//! Discrete-event cluster and LAN simulator.
//!
//! The paper's evaluation ran on 16 Sun 300 MHz workstations connected with
//! 100BaseT networking — hardware we cannot reproduce directly.  This crate
//! is the substitute substrate: a deterministic discrete-event simulator
//! (DES) of a small workstation cluster with
//!
//! * a virtual clock with nanosecond resolution ([`time`]),
//! * nodes with configurable compute rates whose CPUs serialise work
//!   requests ([`node`]) — this is what makes "replication costs roughly a
//!   factor of two" emerge naturally when two worker replicas share a
//!   processor pool,
//! * a switched-LAN network model with per-message overhead, latency and
//!   bandwidth-limited NIC serialisation ([`link`]),
//! * an actor-style programming interface in which reactive processes
//!   exchange messages and request compute blocks ([`cluster`]) — the same
//!   "important transitions happen at message receipt" model the paper
//!   adopts from SCPlib,
//! * fault/attack injection schedules that kill nodes at chosen virtual
//!   times ([`fault`]),
//! * a calibrated cost model translating PCT workload parameters (pixels,
//!   bands, sub-cube sizes) into compute seconds and message bytes
//!   ([`cost`]), and
//! * execution traces and per-node utilisation metrics ([`trace`]).
//!
//! The `pct` crate drives this simulator with the actual manager/worker
//! protocol of the paper to regenerate Figures 4 and 5.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cost;
pub mod fault;
pub mod link;
pub mod node;
pub mod time;
pub mod trace;
pub mod wirecost;

pub use cluster::{
    Actor, ActorContext, ActorId, ClusterSim, LinkFault, LinkVerdict, SimConfig, SimOutcome,
};
pub use cost::{CostModel, WorkstationClass};
pub use fault::FaultPlan;
pub use link::NetworkModel;
pub use node::{NodeId, NodeSpec};
pub use time::{Duration, SimTime};

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An actor or node id referenced an entity that does not exist.
    UnknownEntity {
        /// What kind of entity was referenced.
        kind: &'static str,
        /// The offending identifier.
        id: usize,
    },
    /// The simulation exceeded its configured event budget, which usually
    /// indicates a protocol livelock in the driver.
    EventBudgetExhausted {
        /// The number of events processed before giving up.
        processed: u64,
    },
    /// An invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownEntity { kind, id } => write!(f, "unknown {kind} id {id}"),
            SimError::EventBudgetExhausted { processed } => {
                write!(f, "event budget exhausted after {processed} events")
            }
            SimError::InvalidConfig(msg) => write!(f, "invalid simulator configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SimError>;
