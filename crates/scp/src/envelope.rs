//! Sequence-numbered message envelopes.
//!
//! Every message carries its sender's logical name and a per-sender sequence
//! number.  The resiliency protocols need both: sequence numbers let a
//! receiver discard duplicate deliveries from replicated senders, and they
//! let a regenerated thread's peers detect whether anything was lost while
//! communication was being reconfigured.

use serde::{Deserialize, Serialize};

/// A per-sender monotonically increasing sequence number.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The first sequence number a sender uses.
    pub const FIRST: SeqNum = SeqNum(1);

    /// The next sequence number after this one.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }

    /// Whether `self` immediately follows `prev`.
    pub fn follows(self, prev: SeqNum) -> bool {
        self.0 == prev.0 + 1
    }
}

impl std::fmt::Display for SeqNum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A message envelope: payload plus routing and ordering metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<M> {
    /// Logical name of the sending thread.
    pub from: String,
    /// Logical name of the destination thread (the name used at send time —
    /// useful for diagnosing messages that arrived after a rebinding).
    pub to: String,
    /// Per-sender sequence number.
    pub seq: SeqNum,
    /// Application payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Creates an envelope.
    pub fn new(from: impl Into<String>, to: impl Into<String>, seq: SeqNum, payload: M) -> Self {
        Self {
            from: from.into(),
            to: to.into(),
            seq,
            payload,
        }
    }

    /// Maps the payload, keeping the metadata (useful in tests and adapters).
    pub fn map<N>(self, f: impl FnOnce(M) -> N) -> Envelope<N> {
        Envelope {
            from: self.from,
            to: self.to,
            seq: self.seq,
            payload: f(self.payload),
        }
    }
}

/// Tracks the highest sequence number seen from each sender, so replicated or
/// re-sent messages can be recognised and dropped exactly once semantics can
/// be provided to the application.
#[derive(Debug, Clone, Default)]
pub struct DedupLedger {
    seen: std::collections::HashMap<String, SeqNum>,
}

impl DedupLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an envelope and reports whether it is a *new* message
    /// (`true`) or a duplicate/stale one (`false`).
    ///
    /// A message is new when its sequence number is strictly greater than
    /// the highest already seen from the same sender name.  Replicas of a
    /// sender share the sender name and sequence numbering, so the second
    /// replica's copy of the same logical message is suppressed here.
    pub fn observe<M>(&mut self, envelope: &Envelope<M>) -> bool {
        let entry = self.seen.entry(envelope.from.clone()).or_insert(SeqNum(0));
        if envelope.seq > *entry {
            *entry = envelope.seq;
            true
        } else {
            false
        }
    }

    /// The highest sequence number observed from `sender`, if any.
    pub fn last_seen(&self, sender: &str) -> Option<SeqNum> {
        self.seen.get(sender).copied()
    }

    /// Number of distinct senders observed.
    pub fn senders(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_num_ordering_and_successor() {
        assert!(SeqNum(2) > SeqNum(1));
        assert_eq!(SeqNum(1).next(), SeqNum(2));
        assert!(SeqNum(2).follows(SeqNum(1)));
        assert!(!SeqNum(3).follows(SeqNum(1)));
    }

    #[test]
    fn envelope_map_preserves_metadata() {
        let e = Envelope::new("a", "b", SeqNum(5), 10u32);
        let mapped = e.map(|v| v * 2);
        assert_eq!(mapped.payload, 20);
        assert_eq!(mapped.from, "a");
        assert_eq!(mapped.to, "b");
        assert_eq!(mapped.seq, SeqNum(5));
    }

    #[test]
    fn dedup_accepts_increasing_sequences() {
        let mut ledger = DedupLedger::new();
        assert!(ledger.observe(&Envelope::new("w", "m", SeqNum(1), ())));
        assert!(ledger.observe(&Envelope::new("w", "m", SeqNum(2), ())));
        assert_eq!(ledger.last_seen("w"), Some(SeqNum(2)));
    }

    #[test]
    fn dedup_rejects_duplicates_and_stale_messages() {
        let mut ledger = DedupLedger::new();
        assert!(ledger.observe(&Envelope::new("w", "m", SeqNum(3), ())));
        assert!(!ledger.observe(&Envelope::new("w", "m", SeqNum(3), ())));
        assert!(!ledger.observe(&Envelope::new("w", "m", SeqNum(2), ())));
    }

    #[test]
    fn dedup_tracks_senders_independently() {
        let mut ledger = DedupLedger::new();
        assert!(ledger.observe(&Envelope::new("w1", "m", SeqNum(1), ())));
        assert!(ledger.observe(&Envelope::new("w2", "m", SeqNum(1), ())));
        assert_eq!(ledger.senders(), 2);
        assert_eq!(ledger.last_seen("w3"), None);
    }

    #[test]
    fn replicated_senders_share_sequence_space() {
        // Two replicas of worker "w" both send the logical message #1; the
        // receiver must act on it exactly once.
        let mut ledger = DedupLedger::new();
        let from_primary = Envelope::new("w", "m", SeqNum(1), "result");
        let from_shadow = Envelope::new("w", "m", SeqNum(1), "result");
        assert!(ledger.observe(&from_primary));
        assert!(!ledger.observe(&from_shadow));
    }
}
