//! `scp` — a concurrent-programming library in the style of SCPlib.
//!
//! The paper builds its resiliency concepts on SCPlib [Taylor et al. 1995,
//! Watts et al. 1998]: distributed applications are collections of *threads*
//! that communicate by sending messages, each thread carries a
//! machine-independent description of its communication structure, and the
//! important state transitions happen at message receipt (the reactive
//! model).  Having the communication structure explicit is what makes
//! dynamic replication and reconfiguration possible — the runtime can rebind
//! a logical endpoint to a different physical thread without the application
//! changing a line of code.
//!
//! This crate is that layer, re-imagined as safe Rust on OS threads:
//!
//! * [`envelope`] — sequence-numbered message envelopes.
//! * [`graph`] — the explicit communication-structure descriptor
//!   ([`graph::CommGraph`]), used both for documentation/validation and by
//!   the resiliency layer to know which channels must be re-routed after a
//!   failure.
//! * [`router`] — a dynamic name-to-mailbox registry ([`router::Router`]):
//!   every send resolves the destination name at send time, so rebinding a
//!   name (because a thread was regenerated elsewhere) transparently
//!   redirects subsequent traffic.
//! * [`runtime`] — thread spawning and the per-thread context
//!   ([`runtime::ThreadContext`]) with blocking/timeout receive, send, and
//!   barrier-style synchronisation.
//!
//! The `resilience` crate layers replication groups, failure detection and
//! regeneration on top of these primitives, and `pct` uses both to run the
//! distributed fusion pipeline on real threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envelope;
pub mod graph;
pub mod router;
pub mod runtime;

pub use envelope::{Envelope, SeqNum};
pub use graph::{ChannelSpec, CommGraph};
pub use router::{Router, ThreadName};
pub use runtime::{Runtime, RuntimeConfig, ThreadContext, ThreadHandle};

/// Errors produced by the message-passing layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScpError {
    /// The destination name is not currently bound to any mailbox.
    UnknownDestination(String),
    /// The destination's mailbox has been closed (its thread exited).
    Disconnected(String),
    /// A receive timed out.
    Timeout,
    /// The communication graph does not declare the attempted channel.
    ChannelNotDeclared {
        /// Sending thread.
        from: String,
        /// Receiving thread.
        to: String,
    },
    /// A thread with this name is already registered.
    DuplicateName(String),
    /// The runtime has been shut down.
    Shutdown,
}

impl std::fmt::Display for ScpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScpError::UnknownDestination(name) => write!(f, "unknown destination '{name}'"),
            ScpError::Disconnected(name) => write!(f, "destination '{name}' disconnected"),
            ScpError::Timeout => write!(f, "receive timed out"),
            ScpError::ChannelNotDeclared { from, to } => {
                write!(
                    f,
                    "channel {from} -> {to} not declared in the communication graph"
                )
            }
            ScpError::DuplicateName(name) => write!(f, "thread name '{name}' already registered"),
            ScpError::Shutdown => write!(f, "runtime has been shut down"),
        }
    }
}

impl std::error::Error for ScpError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ScpError>;
