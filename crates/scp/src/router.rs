//! Dynamic name-to-mailbox routing.
//!
//! The router is the mechanism behind dynamic reconfiguration: senders
//! address logical *names*, and the name-to-mailbox binding is resolved at
//! send time under a read lock.  When the resiliency layer regenerates a
//! thread on another node, it simply rebinds the name to the new thread's
//! mailbox; every subsequent send — from any peer, with no peer involvement —
//! flows to the new location.  Nothing already delivered is lost, and the
//! sequence numbers in [`crate::envelope`] let the application reconcile
//! anything that was in flight.

use crate::envelope::{Envelope, SeqNum};
use crate::{Result, ScpError};
use crossbeam_channel::{Receiver, Sender};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A logical thread name.
pub type ThreadName = String;

struct RouterInner<M> {
    bindings: RwLock<HashMap<ThreadName, Sender<Envelope<M>>>>,
    sends: AtomicU64,
    rebinds: AtomicU64,
}

/// A cloneable handle to the routing table shared by every thread in the
/// application.
pub struct Router<M> {
    inner: Arc<RouterInner<M>>,
}

impl<M> Clone for Router<M> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M> Default for Router<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Router<M> {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RouterInner {
                bindings: RwLock::new(HashMap::new()),
                sends: AtomicU64::new(0),
                rebinds: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a mailbox bound to `name` and returns its receiving end.
    ///
    /// Fails if the name is already bound (use [`Router::rebind`] to move an
    /// existing name to a new mailbox).
    pub fn register(&self, name: impl Into<ThreadName>) -> Result<Receiver<Envelope<M>>> {
        let name = name.into();
        let (tx, rx) = crossbeam_channel::unbounded();
        let mut bindings = self.inner.bindings.write();
        if bindings.contains_key(&name) {
            return Err(ScpError::DuplicateName(name));
        }
        bindings.insert(name, tx);
        Ok(rx)
    }

    /// Rebinds `name` to a fresh mailbox, returning the new receiving end.
    /// Subsequent sends to `name` are delivered to the new mailbox; this is
    /// the routing half of thread regeneration.
    pub fn rebind(&self, name: impl Into<ThreadName>) -> Receiver<Envelope<M>> {
        let name = name.into();
        let (tx, rx) = crossbeam_channel::unbounded();
        self.inner.bindings.write().insert(name, tx);
        self.inner.rebinds.fetch_add(1, Ordering::Relaxed);
        rx
    }

    /// Removes a binding entirely (the thread exited and will not return).
    pub fn unbind(&self, name: &str) -> bool {
        self.inner.bindings.write().remove(name).is_some()
    }

    /// Whether `name` is currently bound.
    pub fn is_bound(&self, name: &str) -> bool {
        self.inner.bindings.read().contains_key(name)
    }

    /// Names currently bound, sorted for deterministic iteration.
    pub fn bound_names(&self) -> Vec<ThreadName> {
        let mut names: Vec<_> = self.inner.bindings.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Sends an envelope to the thread currently bound to `envelope.to`.
    pub fn send_envelope(&self, envelope: Envelope<M>) -> Result<()> {
        let bindings = self.inner.bindings.read();
        let Some(tx) = bindings.get(&envelope.to) else {
            return Err(ScpError::UnknownDestination(envelope.to));
        };
        let to = envelope.to.clone();
        tx.send(envelope).map_err(|_| ScpError::Disconnected(to))?;
        self.inner.sends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Convenience: builds an envelope and sends it.
    pub fn send(
        &self,
        from: impl Into<ThreadName>,
        to: impl Into<ThreadName>,
        seq: SeqNum,
        payload: M,
    ) -> Result<()> {
        self.send_envelope(Envelope::new(from, to, seq, payload))
    }

    /// Total number of successful sends through this router.
    pub fn send_count(&self) -> u64 {
        self.inner.sends.load(Ordering::Relaxed)
    }

    /// Total number of rebinds (reconfigurations) performed.
    pub fn rebind_count(&self) -> u64 {
        self.inner.rebinds.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_send_round_trip() {
        let router: Router<String> = Router::new();
        let rx = router.register("alice").unwrap();
        router
            .send("bob", "alice", SeqNum(1), "hello".to_string())
            .unwrap();
        let env = rx.recv().unwrap();
        assert_eq!(env.payload, "hello");
        assert_eq!(env.from, "bob");
        assert_eq!(router.send_count(), 1);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let router: Router<()> = Router::new();
        router.register("x").unwrap();
        assert!(matches!(
            router.register("x"),
            Err(ScpError::DuplicateName(_))
        ));
    }

    #[test]
    fn sending_to_unknown_name_fails() {
        let router: Router<()> = Router::new();
        assert!(matches!(
            router.send("a", "ghost", SeqNum(1), ()),
            Err(ScpError::UnknownDestination(_))
        ));
    }

    #[test]
    fn sending_to_dropped_mailbox_reports_disconnected() {
        let router: Router<()> = Router::new();
        let rx = router.register("x").unwrap();
        drop(rx);
        assert!(matches!(
            router.send("a", "x", SeqNum(1), ()),
            Err(ScpError::Disconnected(_))
        ));
    }

    #[test]
    fn rebind_redirects_subsequent_traffic() {
        let router: Router<u32> = Router::new();
        let old_rx = router.register("worker").unwrap();
        router.send("m", "worker", SeqNum(1), 1).unwrap();

        // The worker is "regenerated": rebind the name to a new mailbox.
        let new_rx = router.rebind("worker");
        router.send("m", "worker", SeqNum(2), 2).unwrap();

        assert_eq!(old_rx.recv().unwrap().payload, 1);
        assert!(
            old_rx.try_recv().is_err(),
            "old mailbox must not see new traffic"
        );
        assert_eq!(new_rx.recv().unwrap().payload, 2);
        assert_eq!(router.rebind_count(), 1);
    }

    #[test]
    fn unbind_removes_the_name() {
        let router: Router<()> = Router::new();
        let _rx = router.register("x").unwrap();
        assert!(router.is_bound("x"));
        assert!(router.unbind("x"));
        assert!(!router.is_bound("x"));
        assert!(!router.unbind("x"));
    }

    #[test]
    fn bound_names_are_sorted() {
        let router: Router<()> = Router::new();
        let _a = router.register("zeta").unwrap();
        let _b = router.register("alpha").unwrap();
        assert_eq!(
            router.bound_names(),
            vec!["alpha".to_string(), "zeta".to_string()]
        );
    }

    #[test]
    fn router_clones_share_state() {
        let router: Router<u8> = Router::new();
        let clone = router.clone();
        let rx = router.register("r").unwrap();
        clone.send("s", "r", SeqNum(1), 9).unwrap();
        assert_eq!(rx.recv().unwrap().payload, 9);
    }

    #[test]
    fn concurrent_senders_all_deliver() {
        let router: Router<u64> = Router::new();
        let rx = router.register("sink").unwrap();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let r = router.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    r.send(format!("t{t}"), "sink", SeqNum(i + 1), t * 1000 + i)
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        while rx.try_recv().is_ok() {
            count += 1;
        }
        assert_eq!(count, 800);
        assert_eq!(router.send_count(), 800);
    }
}
