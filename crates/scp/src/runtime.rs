//! Thread spawning and the per-thread communication context.
//!
//! A [`Runtime`] owns the shared [`Router`] and an optional
//! [`CommGraph`] used to validate sends.  Application threads are spawned
//! with [`Runtime::spawn`]; each receives a [`ThreadContext`] through which
//! it sends and receives envelopes.  The context assigns outgoing sequence
//! numbers automatically, so replicated senders created from the same
//! logical state produce identical numbering — the property the resiliency
//! layer's deduplication relies on.

use crate::envelope::{DedupLedger, Envelope, SeqNum};
use crate::graph::CommGraph;
use crate::router::{Router, ThreadName};
use crate::{Result, ScpError};
use crossbeam_channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a runtime instance.
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// When set, sends over channels not declared in `graph` are rejected
    /// with [`ScpError::ChannelNotDeclared`].
    pub validate_channels: bool,
    /// The declared communication structure.
    pub graph: CommGraph,
}

/// Handle to a spawned thread.
pub struct ThreadHandle<T> {
    /// Logical name of the thread.
    pub name: ThreadName,
    join: JoinHandle<T>,
}

impl<T> ThreadHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Panics propagate, mirroring `std::thread::JoinHandle::join` semantics
    /// but with the thread's name attached for easier diagnosis.
    pub fn join(self) -> T {
        match self.join.join() {
            Ok(v) => v,
            Err(e) => std::panic::resume_unwind(e),
        }
    }

    /// Whether the thread has finished executing.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }
}

/// The per-thread communication context.
pub struct ThreadContext<M> {
    name: ThreadName,
    router: Router<M>,
    receiver: Receiver<Envelope<M>>,
    graph: Arc<CommGraph>,
    validate: bool,
    next_seq: SeqNum,
    dedup: DedupLedger,
}

impl<M> ThreadContext<M> {
    /// This thread's logical name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A clone of the shared router (for advanced uses such as rebinding).
    pub fn router(&self) -> Router<M> {
        self.router.clone()
    }

    /// The sequence number the next send will use.
    pub fn next_seq(&self) -> SeqNum {
        self.next_seq
    }

    /// Sends `payload` to the thread currently bound to `to`, assigning the
    /// next sequence number.
    pub fn send(&mut self, to: &str, payload: M) -> Result<SeqNum> {
        if self.validate && !self.graph.allows(&self.name, to) {
            return Err(ScpError::ChannelNotDeclared {
                from: self.name.clone(),
                to: to.to_string(),
            });
        }
        let seq = self.next_seq;
        self.router.send_envelope(Envelope::new(
            self.name.clone(),
            to.to_string(),
            seq,
            payload,
        ))?;
        self.next_seq = self.next_seq.next();
        Ok(seq)
    }

    /// Sends with an explicit sequence number, used by replicas that must
    /// mirror their primary's numbering exactly.
    pub fn send_with_seq(&mut self, to: &str, seq: SeqNum, payload: M) -> Result<()> {
        if self.validate && !self.graph.allows(&self.name, to) {
            return Err(ScpError::ChannelNotDeclared {
                from: self.name.clone(),
                to: to.to_string(),
            });
        }
        self.router.send_envelope(Envelope::new(
            self.name.clone(),
            to.to_string(),
            seq,
            payload,
        ))?;
        if seq >= self.next_seq {
            self.next_seq = seq.next();
        }
        Ok(())
    }

    /// Blocks until an envelope arrives.
    pub fn recv(&self) -> Result<Envelope<M>> {
        self.receiver.recv().map_err(|_| ScpError::Shutdown)
    }

    /// Blocks until an envelope arrives or the timeout elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>> {
        self.receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ScpError::Timeout,
            RecvTimeoutError::Disconnected => ScpError::Shutdown,
        })
    }

    /// Returns an envelope if one is already queued.
    pub fn try_recv(&self) -> Result<Option<Envelope<M>>> {
        match self.receiver.try_recv() {
            Ok(env) => Ok(Some(env)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ScpError::Shutdown),
        }
    }

    /// Blocks until a *new* (non-duplicate) envelope arrives, transparently
    /// discarding duplicate deliveries from replicated senders.
    pub fn recv_deduplicated(&mut self) -> Result<Envelope<M>> {
        loop {
            let env = self.recv()?;
            if self.dedup.observe(&env) {
                return Ok(env);
            }
        }
    }

    /// Like [`ThreadContext::recv_deduplicated`] but with a per-attempt
    /// timeout.
    pub fn recv_deduplicated_timeout(&mut self, timeout: Duration) -> Result<Envelope<M>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(ScpError::Timeout);
            }
            let env = self.recv_timeout(remaining)?;
            if self.dedup.observe(&env) {
                return Ok(env);
            }
        }
    }

    /// Number of messages queued but not yet received.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }
}

/// The thread runtime: spawning, routing and shutdown.
pub struct Runtime<M> {
    router: Router<M>,
    graph: Arc<CommGraph>,
    validate: bool,
}

impl<M: Send + 'static> Runtime<M> {
    /// Creates a runtime with the given configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        Self {
            router: Router::new(),
            graph: Arc::new(config.graph),
            validate: config.validate_channels,
        }
    }

    /// Creates a runtime with no channel validation (the common case).
    pub fn unvalidated() -> Self {
        Self::new(RuntimeConfig::default())
    }

    /// The shared router.
    pub fn router(&self) -> Router<M> {
        self.router.clone()
    }

    /// The declared communication graph.
    pub fn graph(&self) -> &CommGraph {
        &self.graph
    }

    /// Creates a [`ThreadContext`] bound to `name` without spawning a thread
    /// — used by the thread that owns the runtime (typically the manager) so
    /// it can participate in the protocol directly.
    pub fn context(&self, name: impl Into<ThreadName>) -> Result<ThreadContext<M>> {
        let name = name.into();
        let receiver = self.router.register(name.clone())?;
        Ok(ThreadContext {
            name,
            router: self.router.clone(),
            receiver,
            graph: Arc::clone(&self.graph),
            validate: self.validate,
            next_seq: SeqNum::FIRST,
            dedup: DedupLedger::new(),
        })
    }

    /// Re-creates a context for an existing name by rebinding its mailbox —
    /// the runtime half of regenerating a thread.  `resume_seq` lets the new
    /// incarnation continue the sequence numbering of the old one.
    pub fn regenerate_context(
        &self,
        name: impl Into<ThreadName>,
        resume_seq: SeqNum,
    ) -> ThreadContext<M> {
        let name = name.into();
        let receiver = self.router.rebind(name.clone());
        ThreadContext {
            name,
            router: self.router.clone(),
            receiver,
            graph: Arc::clone(&self.graph),
            validate: self.validate,
            next_seq: resume_seq,
            dedup: DedupLedger::new(),
        }
    }

    /// Spawns a named thread running `body` with its own context.
    pub fn spawn<T, F>(&self, name: impl Into<ThreadName>, body: F) -> Result<ThreadHandle<T>>
    where
        T: Send + 'static,
        F: FnOnce(ThreadContext<M>) -> T + Send + 'static,
    {
        let name = name.into();
        let ctx = self.context(name.clone())?;
        let thread_name = name.clone();
        let join = std::thread::Builder::new()
            .name(thread_name.clone())
            .spawn(move || body(ctx))
            .expect("failed to spawn OS thread");
        Ok(ThreadHandle { name, join })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_and_exchange_messages() {
        let runtime: Runtime<String> = Runtime::unvalidated();
        let mut manager = runtime.context("manager").unwrap();
        let worker = runtime
            .spawn("worker", |mut ctx: ThreadContext<String>| {
                let env = ctx.recv().unwrap();
                ctx.send(&env.from, format!("echo:{}", env.payload))
                    .unwrap();
                env.payload
            })
            .unwrap();

        manager.send("worker", "ping".to_string()).unwrap();
        let reply = manager.recv().unwrap();
        assert_eq!(reply.payload, "echo:ping");
        assert_eq!(reply.from, "worker");
        assert_eq!(worker.join(), "ping");
    }

    #[test]
    fn sequence_numbers_increment_per_sender() {
        let runtime: Runtime<u32> = Runtime::unvalidated();
        let mut a = runtime.context("a").unwrap();
        let _b_rx = runtime.router().register("b").unwrap();
        assert_eq!(a.send("b", 1).unwrap(), SeqNum(1));
        assert_eq!(a.send("b", 2).unwrap(), SeqNum(2));
        assert_eq!(a.next_seq(), SeqNum(3));
    }

    #[test]
    fn channel_validation_rejects_undeclared_sends() {
        let mut graph = CommGraph::new();
        graph.declare("a", "b", "ok");
        let runtime: Runtime<()> = Runtime::new(RuntimeConfig {
            validate_channels: true,
            graph,
        });
        let mut a = runtime.context("a").unwrap();
        let mut b = runtime.context("b").unwrap();
        assert!(a.send("b", ()).is_ok());
        assert!(matches!(
            b.send("a", ()),
            Err(ScpError::ChannelNotDeclared { .. })
        ));
    }

    #[test]
    fn recv_timeout_times_out() {
        let runtime: Runtime<()> = Runtime::unvalidated();
        let ctx = runtime.context("lonely").unwrap();
        let err = ctx.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, ScpError::Timeout);
    }

    #[test]
    fn try_recv_returns_none_when_empty() {
        let runtime: Runtime<u8> = Runtime::unvalidated();
        let mut a = runtime.context("a").unwrap();
        let b = runtime.context("b").unwrap();
        assert!(b.try_recv().unwrap().is_none());
        a.send("b", 7).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap().payload, 7);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn duplicate_name_rejected_for_contexts() {
        let runtime: Runtime<()> = Runtime::unvalidated();
        let _a = runtime.context("same").unwrap();
        assert!(runtime.context("same").is_err());
    }

    #[test]
    fn recv_deduplicated_suppresses_replica_copies() {
        let runtime: Runtime<&'static str> = Runtime::unvalidated();
        let mut receiver = runtime.context("manager").unwrap();
        let router = runtime.router();
        // Two replicas of "worker3" send the same logical messages.
        router
            .send("worker3", "manager", SeqNum(1), "result-1")
            .unwrap();
        router
            .send("worker3", "manager", SeqNum(1), "result-1")
            .unwrap();
        router
            .send("worker3", "manager", SeqNum(2), "result-2")
            .unwrap();
        router
            .send("worker3", "manager", SeqNum(2), "result-2")
            .unwrap();

        assert_eq!(receiver.recv_deduplicated().unwrap().payload, "result-1");
        assert_eq!(receiver.recv_deduplicated().unwrap().payload, "result-2");
        // Nothing further: both remaining queued messages are duplicates.
        assert!(matches!(
            receiver.recv_deduplicated_timeout(Duration::from_millis(20)),
            Err(ScpError::Timeout)
        ));
    }

    #[test]
    fn regenerate_context_takes_over_a_name() {
        let runtime: Runtime<u32> = Runtime::unvalidated();
        let mut manager = runtime.context("manager").unwrap();
        let original = runtime.context("worker").unwrap();
        manager.send("worker", 1).unwrap();
        assert_eq!(original.recv().unwrap().payload, 1);

        // Simulate the worker being lost and regenerated: rebind the name.
        let regenerated = runtime.regenerate_context("worker", SeqNum(10));
        manager.send("worker", 2).unwrap();
        assert_eq!(regenerated.recv().unwrap().payload, 2);
        // The original mailbox no longer receives anything: its sender was
        // replaced by the rebind, so it reports either empty or shutdown.
        assert!(matches!(
            original.try_recv(),
            Ok(None) | Err(ScpError::Shutdown)
        ));
        assert_eq!(regenerated.next_seq(), SeqNum(10));
    }

    #[test]
    fn many_workers_round_trip() {
        let runtime: Runtime<usize> = Runtime::unvalidated();
        let mut manager = runtime.context("manager").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                runtime
                    .spawn(
                        format!("worker{i}"),
                        move |mut ctx: ThreadContext<usize>| {
                            let env = ctx.recv().unwrap();
                            ctx.send("manager", env.payload * env.payload).unwrap();
                        },
                    )
                    .unwrap()
            })
            .collect();
        for i in 0..8 {
            manager.send(&format!("worker{i}"), i + 1).unwrap();
        }
        let mut results: Vec<usize> = (0..8).map(|_| manager.recv().unwrap().payload).collect();
        results.sort();
        assert_eq!(results, vec![1, 4, 9, 16, 25, 36, 49, 64]);
        for h in handles {
            h.join();
        }
    }

    #[test]
    fn handle_reports_finished_state() {
        let runtime: Runtime<()> = Runtime::unvalidated();
        let handle = runtime.spawn("quick", |_ctx| 42u8).unwrap();
        let value = handle.join();
        assert_eq!(value, 42);
    }
}
