//! Explicit communication-structure descriptors.
//!
//! SCPlib threads carry "a machine independent description of \[their\]
//! communication structure".  The descriptor serves two purposes here:
//!
//! 1. *Validation* — the runtime can reject sends over undeclared channels,
//!    catching protocol bugs early (a property the paper's protocols rely on
//!    when reasoning about which channels must be preserved across
//!    reconfiguration).
//! 2. *Reconfiguration planning* — when a thread is regenerated on another
//!    node, the resiliency layer walks the graph to find every peer whose
//!    routing entry must be rebound.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One declared unidirectional channel.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Sending thread name.
    pub from: String,
    /// Receiving thread name.
    pub to: String,
    /// Free-form label describing what flows over the channel (sub-problems,
    /// results, heartbeats…).  Purely documentary.
    pub label: String,
}

/// A communication graph over logical thread names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommGraph {
    channels: BTreeSet<(String, String)>,
    labels: BTreeMap<(String, String), String>,
}

impl CommGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a channel `from -> to`.
    pub fn declare(
        &mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        label: impl Into<String>,
    ) {
        let key = (from.into(), to.into());
        self.labels.insert(key.clone(), label.into());
        self.channels.insert(key);
    }

    /// Declares both directions between two threads.
    pub fn declare_bidirectional(
        &mut self,
        a: impl Into<String> + Clone,
        b: impl Into<String> + Clone,
        label: impl Into<String> + Clone,
    ) {
        self.declare(a.clone(), b.clone(), label.clone());
        self.declare(b, a, label);
    }

    /// Whether `from -> to` has been declared.
    pub fn allows(&self, from: &str, to: &str) -> bool {
        self.channels.contains(&(from.to_string(), to.to_string()))
    }

    /// All declared channels.
    pub fn channels(&self) -> Vec<ChannelSpec> {
        self.channels
            .iter()
            .map(|(from, to)| ChannelSpec {
                from: from.clone(),
                to: to.clone(),
                label: self
                    .labels
                    .get(&(from.clone(), to.clone()))
                    .cloned()
                    .unwrap_or_default(),
            })
            .collect()
    }

    /// Number of declared channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether no channels are declared.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Every thread that sends to `name` — the peers whose routing entries
    /// must be refreshed when `name` is regenerated elsewhere.
    pub fn senders_to(&self, name: &str) -> Vec<String> {
        self.channels
            .iter()
            .filter(|(_, to)| to == name)
            .map(|(from, _)| from.clone())
            .collect()
    }

    /// Every thread `name` sends to.
    pub fn receivers_from(&self, name: &str) -> Vec<String> {
        self.channels
            .iter()
            .filter(|(from, _)| from == name)
            .map(|(_, to)| to.clone())
            .collect()
    }

    /// All thread names mentioned anywhere in the graph.
    pub fn threads(&self) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        for (from, to) in &self.channels {
            names.insert(from.clone());
            names.insert(to.clone());
        }
        names
    }

    /// Builds the manager/worker star topology the paper's decomposition
    /// uses: the manager exchanges sub-problems and results with each of
    /// `workers` workers.
    pub fn manager_worker(manager: &str, workers: &[String]) -> Self {
        let mut graph = Self::new();
        for w in workers {
            graph.declare(manager, w.clone(), "sub-problem");
            graph.declare(w.clone(), manager, "result");
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_channels_are_allowed() {
        let mut g = CommGraph::new();
        g.declare("manager", "worker0", "sub-problem");
        assert!(g.allows("manager", "worker0"));
        assert!(!g.allows("worker0", "manager"));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn bidirectional_declares_both_directions() {
        let mut g = CommGraph::new();
        g.declare_bidirectional("a", "b", "chat");
        assert!(g.allows("a", "b"));
        assert!(g.allows("b", "a"));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn duplicate_declarations_are_idempotent() {
        let mut g = CommGraph::new();
        g.declare("a", "b", "x");
        g.declare("a", "b", "y");
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn senders_and_receivers_queries() {
        let g = CommGraph::manager_worker("m", &["w0".into(), "w1".into(), "w2".into()]);
        assert_eq!(g.senders_to("m").len(), 3);
        assert_eq!(g.receivers_from("m").len(), 3);
        assert_eq!(g.senders_to("w1"), vec!["m".to_string()]);
        assert_eq!(g.threads().len(), 4);
    }

    #[test]
    fn manager_worker_star_shape() {
        let workers: Vec<String> = (0..4).map(|i| format!("w{i}")).collect();
        let g = CommGraph::manager_worker("manager", &workers);
        assert_eq!(g.len(), 8);
        for w in &workers {
            assert!(g.allows("manager", w));
            assert!(g.allows(w, "manager"));
        }
        assert!(!g.allows("w0", "w1"));
    }

    #[test]
    fn empty_graph_reports_empty() {
        let g = CommGraph::new();
        assert!(g.is_empty());
        assert!(g.channels().is_empty());
        assert!(g.threads().is_empty());
    }

    #[test]
    fn channel_specs_carry_labels() {
        let mut g = CommGraph::new();
        g.declare("a", "b", "results");
        let specs = g.channels();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].label, "results");
    }
}
