//! Ties the simulator to the wire: `netsim::wirecost`'s byte formulas must
//! equal the *real* encoded frame sizes for the same message set.
//!
//! The message set is built from a real partitioned scene — the exact
//! messages a manager and its workers exchange over one fusion run — so
//! any codec layout change (field widths, prefixes, framing) breaks this
//! test and forces the simulator constants to be fixed in the same commit.

use hsi::partition::partition_views;
use hsi::{CubeDims, HyperCube};
use linalg::{Matrix, Vector};
use netsim::wirecost;
use pct::messages::PctMessage;
use pct::PctConfig;
use std::sync::Arc;
use wire::{encode_message, WireMessage};

fn scene(dims: CubeDims) -> Arc<HyperCube> {
    let samples: Vec<f64> = (0..dims.samples())
        .map(|i| (i % 509) as f64 * 0.25)
        .collect();
    Arc::new(HyperCube::from_samples(dims, samples).expect("length matches"))
}

fn vectors(count: usize, bands: usize) -> Vec<Vector> {
    (0..count)
        .map(|i| Vector::from_vec((0..bands).map(|k| (i * bands + k) as f64).collect()))
        .collect()
}

#[test]
fn modeled_bytes_equal_real_frame_sizes_for_a_fusion_message_set() {
    let (width, height, bands, components) = (16, 12, 7, 3);
    let cube = scene(CubeDims::new(width, height, bands));
    let views = partition_views(&cube, 3).expect("partitions");
    let unique = vectors(11, bands);
    let mean = Vector::from_vec(vec![0.5; bands]);
    let transform = Matrix::from_row_major(
        components,
        bands,
        (0..components * bands).map(|i| i as f64).collect(),
    )
    .expect("dims consistent");

    for view in &views {
        let pixels = view.pixels() as u64;

        let screen = encode_message(&WireMessage::Pct(PctMessage::ScreenTask {
            task: 1,
            view: view.clone(),
            threshold_rad: 0.0874,
        }));
        assert_eq!(
            screen.len() as u64,
            wirecost::screen_task_frame(pixels, bands as u64),
            "ScreenTask frame size drifted from the netsim model"
        );

        let seeded = encode_message(&WireMessage::Pct(PctMessage::ScreenSeededTask {
            task: 2,
            view: view.clone(),
            seed: unique.clone(),
            threshold_rad: 0.0874,
        }));
        assert_eq!(
            seeded.len() as u64,
            wirecost::screen_seeded_task_frame(pixels, bands as u64, unique.len() as u64),
            "ScreenSeededTask frame size drifted from the netsim model"
        );

        let transform_task = encode_message(&WireMessage::Pct(PctMessage::TransformTask {
            task: 3,
            view: view.clone(),
            mean: mean.clone(),
            transform: transform.clone(),
            scales: vec![(0.0, 1.0); components],
        }));
        assert_eq!(
            transform_task.len() as u64,
            wirecost::transform_task_frame(pixels, bands as u64, components as u64),
            "TransformTask frame size drifted from the netsim model"
        );

        let strip = encode_message(&WireMessage::Pct(PctMessage::RgbStrip {
            task: 4,
            row_start: view.row_start(),
            rows: view.height(),
            width: view.width(),
            rgb: vec![0u8; view.pixels() * 3],
        }));
        assert_eq!(
            strip.len() as u64,
            wirecost::rgb_strip_frame(pixels),
            "RgbStrip frame size drifted from the netsim model"
        );
    }

    let unique_reply = encode_message(&WireMessage::Pct(PctMessage::UniqueSet {
        task: 5,
        unique: unique.clone(),
    }));
    assert_eq!(
        unique_reply.len() as u64,
        wirecost::unique_set_frame(unique.len() as u64, bands as u64),
        "UniqueSet frame size drifted from the netsim model"
    );

    let seeded_reply = encode_message(&WireMessage::Pct(PctMessage::SeededUnique {
        task: 6,
        accepted: unique.clone(),
    }));
    assert_eq!(
        seeded_reply.len() as u64,
        wirecost::unique_set_frame(unique.len() as u64, bands as u64),
        "SeededUnique frame size drifted from the netsim model"
    );

    let cov_task = encode_message(&WireMessage::Pct(PctMessage::CovarianceTask {
        task: 7,
        mean: mean.clone(),
        pixels: unique.clone(),
    }));
    assert_eq!(
        cov_task.len() as u64,
        wirecost::covariance_task_frame(unique.len() as u64, bands as u64),
        "CovarianceTask frame size drifted from the netsim model"
    );

    let cov_sum = encode_message(&WireMessage::Pct(PctMessage::CovarianceSum {
        task: 8,
        packed: vec![0.0; bands * (bands + 1) / 2],
        bands,
        count: unique.len() as u64,
    }));
    assert_eq!(
        cov_sum.len() as u64,
        wirecost::covariance_sum_frame(bands as u64),
        "CovarianceSum frame size drifted from the netsim model"
    );

    for control in [PctMessage::Heartbeat, PctMessage::Shutdown] {
        assert_eq!(
            encode_message(&WireMessage::Pct(control)).len() as u64,
            wirecost::control_frame(),
            "control frame size drifted from the netsim model"
        );
    }
    assert_eq!(
        encode_message(&WireMessage::hello()).len() as u64,
        wirecost::hello_frame(),
        "Hello frame size drifted from the netsim model"
    );
}

#[test]
fn derive_phase_messages_stay_within_modeled_broadcast_budget() {
    // The derive/derived pair has no dedicated wirecost formula (it is a
    // service-lane refinement the simulator does not schedule), but its
    // sizes decompose into the same primitives; check the decomposition so
    // the constants stay honest for these layouts too.
    let bands = 7;
    let unique = vectors(9, bands);
    let derive = encode_message(&WireMessage::Pct(PctMessage::DeriveTask {
        task: 9,
        unique: unique.clone(),
        config: PctConfig {
            screening_angle_rad: 0.0874,
            output_components: 3,
        },
    }));
    let expected = wirecost::framed(
        wirecost::TAG_BYTES
            + wirecost::TASK_ID_BYTES
            + wirecost::vector_set_bytes(unique.len() as u64, bands as u64)
            + wirecost::SAMPLE_BYTES
            + wirecost::LEN_PREFIX_BYTES,
    );
    assert_eq!(derive.len() as u64, expected);

    let derived = encode_message(&WireMessage::Pct(PctMessage::DerivedTransform {
        task: 10,
        mean: Vector::from_vec(vec![0.0; bands]),
        transform: Matrix::from_row_major(3, bands, vec![0.0; 3 * bands]).unwrap(),
        eigenvalues: vec![0.0; bands],
    }));
    let expected = wirecost::framed(
        wirecost::TAG_BYTES
            + wirecost::TASK_ID_BYTES
            + wirecost::vector_bytes(bands as u64)
            + wirecost::matrix_bytes(3, bands as u64)
            + wirecost::LEN_PREFIX_BYTES
            + bands as u64 * wirecost::SAMPLE_BYTES,
    );
    assert_eq!(derived.len() as u64, expected);
}
