//! Property suite for the wire codec: arbitrary messages round-trip
//! *bit*-identical, and no malformed input — truncated, bit-flipped,
//! oversized-length or version-mismatched — ever panics the decoder; it
//! always surfaces a typed [`WireError`].

use hsi::{CubeDims, CubeView, HyperCube};
use linalg::{Matrix, Vector};
use pct::messages::PctMessage;
use pct::PctConfig;
use proptest::prelude::*;
use std::sync::Arc;
use wire::frame::{frame, FrameReader, FRAME_HEADER_BYTES};
use wire::{decode_body, encode_message, Transport, WireError, WireMessage, PROTOCOL_VERSION};

/// A deterministic cube whose every sample is a distinct salted value, so
/// bit-identity failures cannot hide behind repeated samples.
fn coded_cube(dims: CubeDims, salt: f64) -> Arc<HyperCube> {
    let samples: Vec<f64> = (0..dims.samples())
        .map(|i| salt + (i as f64) * 0.372_912_4 + (i as f64).sin() * 1e-3)
        .collect();
    Arc::new(HyperCube::from_samples(dims, samples).expect("length matches"))
}

/// A window view over a salted cube, exercising non-zero origins.
fn coded_view(w: usize, h: usize, b: usize, x0: usize, y0: usize, salt: f64) -> CubeView {
    let cube = coded_cube(CubeDims::new(w + x0, h + y0, b), salt);
    CubeView::window(cube, x0, y0, w, h).expect("window in bounds")
}

fn coded_vectors(count: usize, bands: usize, salt: f64) -> Vec<Vector> {
    (0..count)
        .map(|i| {
            Vector::from_vec(
                (0..bands)
                    .map(|k| salt * 0.7 + (i * bands + k) as f64 * 1.618)
                    .collect(),
            )
        })
        .collect()
}

fn round_trip(msg: &WireMessage) -> WireMessage {
    let bytes = encode_message(msg);
    let mut reader = FrameReader::new();
    reader.push(&bytes);
    let body = reader.next_frame().expect("valid frame").expect("complete");
    decode_body(&body).expect("decodes")
}

/// Bit-exact equality: `PartialEq` on f64 treats `-0.0 == 0.0` and
/// NaN ≠ NaN, so byte-level comparison of a re-encode is the real oracle.
fn assert_bits_round_trip(msg: &WireMessage) {
    let decoded = round_trip(msg);
    assert_eq!(&decoded, msg);
    assert_eq!(encode_message(&decoded), encode_message(msg));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Screen tasks with arbitrary dims and window origins round-trip
    /// bit-identical, including the scene coordinates workers label
    /// results with.
    #[test]
    fn screen_tasks_round_trip(
        w in 1usize..12,
        h in 1usize..16,
        b in 1usize..6,
        x0 in 0usize..5,
        y0 in 0usize..7,
        task in 0usize..1_000_000,
        salt in -100.0..100.0f64,
    ) {
        let view = coded_view(w, h, b, x0, y0, salt);
        let msg = WireMessage::Pct(PctMessage::ScreenTask {
            task,
            view: view.clone(),
            threshold_rad: salt * 1e-3,
        });
        let decoded = round_trip(&msg);
        let WireMessage::Pct(PctMessage::ScreenTask { view: dv, .. }) = &decoded else {
            panic!("variant changed across the wire");
        };
        prop_assert_eq!(dv.x0(), x0);
        prop_assert_eq!(dv.row_start(), y0);
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(encode_message(&decoded), encode_message(&msg));
    }

    /// Seeded screening: the view plus an arbitrary seed set survive
    /// together.
    #[test]
    fn seeded_tasks_round_trip(
        w in 1usize..10,
        h in 1usize..10,
        b in 1usize..5,
        seed in 0usize..9,
        salt in -50.0..50.0f64,
    ) {
        let msg = WireMessage::Pct(PctMessage::ScreenSeededTask {
            task: 3,
            view: coded_view(w, h, b, 0, 0, salt),
            seed: coded_vectors(seed, b, salt),
            threshold_rad: 0.0874,
        });
        assert_bits_round_trip(&msg);
    }

    /// Transform tasks: view + mean + matrix + scales, the largest layout.
    #[test]
    fn transform_tasks_round_trip(
        w in 1usize..10,
        h in 1usize..10,
        b in 1usize..6,
        comps in 1usize..5,
        salt in -50.0..50.0f64,
    ) {
        let mean = coded_vectors(1, b, salt).pop().unwrap();
        let transform = Matrix::from_row_major(
            comps,
            b,
            (0..comps * b).map(|i| salt + i as f64 * 0.31).collect(),
        ).unwrap();
        let msg = WireMessage::Pct(PctMessage::TransformTask {
            task: 5,
            view: coded_view(w, h, b, 1, 2, salt),
            mean,
            transform,
            scales: (0..comps).map(|i| (salt - i as f64, salt + i as f64)).collect(),
        });
        assert_bits_round_trip(&msg);
    }

    /// Reply messages (unique sets, covariance sums, strips, derived
    /// transforms, failures) round-trip with special float values mixed in.
    #[test]
    fn reply_messages_round_trip(
        n in 0usize..12,
        b in 1usize..6,
        count in 0u64..1_000_000,
        salt in -50.0..50.0f64,
    ) {
        let mut packed: Vec<f64> = (0..b * (b + 1) / 2).map(|i| salt * i as f64).collect();
        // Special values must survive bit-exactly.
        if let Some(first) = packed.first_mut() {
            *first = -0.0;
        }
        let vectors = coded_vectors(n, b, salt);
        for msg in [
            WireMessage::Pct(PctMessage::UniqueSet { task: 1, unique: vectors.clone() }),
            WireMessage::Pct(PctMessage::SeededUnique { task: 2, accepted: vectors.clone() }),
            WireMessage::Pct(PctMessage::CovarianceTask {
                task: 3,
                mean: Vector::from_vec(vec![f64::INFINITY; b]),
                pixels: vectors.clone(),
            }),
            WireMessage::Pct(PctMessage::CovarianceSum { task: 4, packed: packed.clone(), bands: b, count }),
            WireMessage::Pct(PctMessage::RgbStrip {
                task: 5,
                row_start: n,
                rows: 2,
                width: b,
                rgb: (0..n * 3).map(|i| (i % 251) as u8).collect(),
            }),
            WireMessage::Pct(PctMessage::DeriveTask {
                task: 6,
                unique: vectors.clone(),
                config: PctConfig { screening_angle_rad: salt.abs() * 1e-3, output_components: b },
            }),
            WireMessage::Pct(PctMessage::DerivedTransform {
                task: 7,
                mean: Vector::from_vec((0..b).map(|i| salt + i as f64).collect()),
                transform: Matrix::from_row_major(1, b, (0..b).map(|i| i as f64).collect()).unwrap(),
                eigenvalues: packed,
            }),
            WireMessage::Pct(PctMessage::TaskFailed { task: 8, error: format!("err {salt}") }),
            WireMessage::Pct(PctMessage::Heartbeat),
            WireMessage::Pct(PctMessage::Shutdown),
            WireMessage::Hello { version: count as u32 },
        ] {
            assert_bits_round_trip(&msg);
        }
    }

    /// NaN payload bits survive: `PartialEq` can't see this, the re-encoded
    /// bytes can.
    #[test]
    fn nan_bit_patterns_survive(payload in 0u64..0x000F_FFFF_FFFF_FFFF) {
        // Quiet-NaN with an arbitrary payload.
        let nan = f64::from_bits(0x7FF8_0000_0000_0000 | payload);
        let msg = WireMessage::Pct(PctMessage::CovarianceSum {
            task: 0,
            packed: vec![nan],
            bands: 1,
            count: 1,
        });
        let bytes = encode_message(&msg);
        let decoded = round_trip(&msg);
        prop_assert_eq!(encode_message(&decoded), bytes);
        let WireMessage::Pct(PctMessage::CovarianceSum { packed, .. }) = decoded else {
            panic!("variant changed");
        };
        prop_assert_eq!(packed[0].to_bits(), nan.to_bits());
    }

    /// Truncating a valid body at *any* point yields a typed error — never
    /// a panic, never a bogus success.
    #[test]
    fn truncated_bodies_are_typed_errors(
        w in 1usize..8,
        h in 1usize..8,
        b in 1usize..4,
        cut in 0.0..1.0f64,
        salt in -10.0..10.0f64,
    ) {
        let msg = WireMessage::Pct(PctMessage::ScreenTask {
            task: 1,
            view: coded_view(w, h, b, 0, 0, salt),
            threshold_rad: 0.1,
        });
        let bytes = encode_message(&msg);
        let body = &bytes[FRAME_HEADER_BYTES..];
        let cut_at = ((body.len() - 1) as f64 * cut) as usize;
        match decode_body(&body[..cut_at]) {
            Err(WireError::Truncated { .. }) | Err(WireError::Malformed(_)) => {}
            Ok(_) => prop_assert!(false, "truncated body decoded successfully"),
            Err(e) => prop_assert!(false, "unexpected error kind: {e:?}"),
        }
    }

    /// Flipping any single body bit is caught by the CRC before decoding.
    #[test]
    fn corrupted_frames_fail_crc(
        byte_frac in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let msg = WireMessage::Pct(PctMessage::TaskFailed {
            task: 9,
            error: "integrity probe".to_string(),
        });
        let mut bytes = encode_message(&msg);
        let body_len = bytes.len() - FRAME_HEADER_BYTES;
        let idx = FRAME_HEADER_BYTES + ((body_len - 1) as f64 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert!(matches!(
            reader.next_frame(),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    /// Any announced body length beyond the ceiling is rejected before
    /// allocation, whatever the rest of the header claims.
    #[test]
    fn oversized_lengths_are_rejected(extra in 1u32..u32::MAX / 2) {
        let mut bytes = frame(b"tiny");
        let huge = (wire::MAX_FRAME_BYTES as u32).saturating_add(extra);
        bytes[4..8].copy_from_slice(&huge.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        prop_assert!(matches!(
            reader.next_frame(),
            Err(WireError::OversizedFrame { .. })
        ));
    }

    /// Every foreign version number is rejected by the handshake with the
    /// typed mismatch error carrying both versions.
    #[test]
    fn version_mismatches_are_typed(theirs in 0u32..10_000) {
        prop_assume!(theirs != PROTOCOL_VERSION);
        let (mut ours, mut peer) = wire::loopback_pair();
        peer.send(&WireMessage::Hello { version: theirs }).unwrap();
        let err = wire::handshake(&mut ours, std::time::Duration::from_millis(200)).unwrap_err();
        prop_assert_eq!(
            err,
            WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs }
        );
    }
}

/// Frames arriving one byte at a time reassemble into the identical
/// message — the transport buffering can never split a message apart.
#[test]
fn byte_dribbled_frames_reassemble() {
    let msg = WireMessage::Pct(PctMessage::UniqueSet {
        task: 77,
        unique: vec![Vector::from_vec(vec![1.5, -2.5, f64::EPSILON])],
    });
    let bytes = encode_message(&msg);
    let mut reader = FrameReader::new();
    let mut decoded = None;
    for &byte in &bytes {
        reader.push(&[byte]);
        if let Some(body) = reader.next_frame().expect("no corruption") {
            decoded = Some(decode_body(&body).expect("decodes"));
        }
    }
    assert_eq!(decoded, Some(msg));
}
