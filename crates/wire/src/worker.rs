//! The remote worker loop: what a `fusiond-worker` process runs after
//! connecting back to the service.
//!
//! The loop mirrors the in-process standard worker
//! (`service`'s `standard_worker_loop`) beat for beat so the scheduler's
//! failure detector sees identical liveness behaviour from both lanes:
//! a 25 ms receive tick, a heartbeat after every reply, and a heartbeat
//! on every idle tick.  Tasks are computed by
//! [`pct::distributed::handle_task`] — the same function the in-process
//! distributed pipeline uses — so results are byte-identical by
//! construction.

use crate::codec::WireMessage;
use crate::transport::{handshake, Transport};
use crate::{Result, WireError};
use pct::distributed::handle_task;
use pct::messages::PctMessage;
use std::time::Duration;

/// Receive-tick / heartbeat cadence, matching the in-process lane.
pub const TICK: Duration = Duration::from_millis(25);

/// Handshake deadline for a fresh connection.
pub const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Runs the worker protocol over an established transport until the
/// manager sends `Shutdown` (clean exit) or the connection fails.
///
/// The handshake runs first; a version-mismatched manager is rejected with
/// a typed error before any task is accepted.
pub fn run_worker(transport: &mut dyn Transport) -> Result<()> {
    handshake(transport, HANDSHAKE_TIMEOUT)?;
    serve(transport)
}

/// The post-handshake serve loop (split out for tests that have already
/// shaken hands).
pub fn serve(transport: &mut dyn Transport) -> Result<()> {
    loop {
        match transport.recv_timeout(TICK)? {
            Some(WireMessage::Pct(PctMessage::Shutdown)) => return Ok(()),
            Some(WireMessage::Pct(msg)) => {
                if let Some(reply) = handle_task(msg) {
                    transport.send(&WireMessage::Pct(reply))?;
                }
                transport.send(&WireMessage::Pct(PctMessage::Heartbeat))?;
            }
            Some(WireMessage::Hello { .. }) => {
                return Err(WireError::Malformed("unexpected Hello after handshake"))
            }
            // Idle tick: prove liveness, exactly like the thread lane.
            None => transport.send(&WireMessage::Pct(PctMessage::Heartbeat))?,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::loopback_pair;
    use hsi::{CubeDims, CubeView, HyperCube};
    use std::sync::Arc;

    #[test]
    fn worker_computes_screen_tasks_and_heartbeats() {
        let (mut manager, mut worker) = loopback_pair();
        let t = std::thread::spawn(move || run_worker(&mut worker));
        handshake(&mut manager, HANDSHAKE_TIMEOUT).unwrap();

        let mut cube = HyperCube::zeros(CubeDims::new(2, 2, 2));
        cube.set_pixel(0, 0, &[1.0, 0.0]).unwrap();
        cube.set_pixel(1, 0, &[0.0, 1.0]).unwrap();
        cube.set_pixel(0, 1, &[1.0, 0.05]).unwrap();
        cube.set_pixel(1, 1, &[0.05, 1.0]).unwrap();
        let view = CubeView::full(Arc::new(cube));
        manager
            .send(&WireMessage::Pct(PctMessage::ScreenTask {
                task: 4,
                view,
                threshold_rad: 0.1,
            }))
            .unwrap();

        // First non-heartbeat reply is the unique set.
        let reply = loop {
            match manager.recv_timeout(Duration::from_secs(2)).unwrap() {
                Some(WireMessage::Pct(PctMessage::Heartbeat)) => continue,
                Some(msg) => break msg,
                None => continue,
            }
        };
        let WireMessage::Pct(PctMessage::UniqueSet { task, unique }) = reply else {
            panic!("expected a unique set, got {reply:?}");
        };
        assert_eq!(task, 4);
        assert_eq!(unique.len(), 2);

        manager
            .send(&WireMessage::Pct(PctMessage::Shutdown))
            .unwrap();
        t.join().unwrap().unwrap();
    }

    #[test]
    fn idle_worker_heartbeats() {
        let (mut manager, mut worker) = loopback_pair();
        let t = std::thread::spawn(move || run_worker(&mut worker));
        handshake(&mut manager, HANDSHAKE_TIMEOUT).unwrap();
        let beat = manager.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(beat, Some(WireMessage::Pct(PctMessage::Heartbeat)));
        manager
            .send(&WireMessage::Pct(PctMessage::Shutdown))
            .unwrap();
        t.join().unwrap().unwrap();
    }
}
