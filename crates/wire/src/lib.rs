//! Versioned binary wire protocol for the fusion message set.
//!
//! Everything the in-process lanes ship by `Arc` reference has to become
//! actual bytes at a process boundary.  This crate is that boundary:
//!
//! - [`codec`] — a fixed-layout little-endian encoding of
//!   [`pct::messages::PctMessage`] plus the protocol-control handshake
//!   message, wrapped in length-prefixed CRC-checked frames ([`frame`]).
//!   Cube payloads serialize via [`hsi::CubeView::materialize`], the one
//!   charged deep-copy point, so the clone ledger doubles as the wire-bytes
//!   ledger — and the encode path `debug_assert`s that no other copy
//!   happened.
//! - [`transport`] — a [`Transport`] trait over whole messages with two
//!   impls: an in-process [`transport::loopback_pair`] for deterministic
//!   tests, and [`transport::TcpTransport`] over `std::net::TcpStream` for
//!   real worker processes.  [`transport::handshake`] exchanges protocol
//!   versions and rejects mismatches with a typed error.
//! - [`worker`] — the remote worker loop: receive tasks, compute via
//!   [`pct::distributed::handle_task`], reply, heartbeat.  The
//!   `fusiond-worker` binary is a `main` around [`worker::run_worker`].
//!
//! # Version policy
//!
//! [`PROTOCOL_VERSION`] is bumped on **any** layout change — field order,
//! widths, tag numbering, frame header.  Peers exchange `Hello{version}`
//! frames first; a mismatch fails the connection with
//! [`WireError::VersionMismatch`] before any payload is interpreted.  There
//! is deliberately no in-band negotiation: a fleet rolls forward by
//! draining workers on the old version, which the service's failover
//! machinery already handles (a worker that disappears has its tasks
//! re-dispatched).

pub mod codec;
pub mod frame;
pub mod transport;
pub mod worker;

pub use codec::{decode_body, encode_message, WireMessage};
pub use frame::{FrameReader, FRAME_HEADER_BYTES, MAX_FRAME_BYTES};
pub use transport::{handshake, loopback_pair, LoopbackTransport, TcpTransport, Transport};

/// Protocol version spoken by this build.  Bumped on any layout change;
/// see the crate-level version policy.
pub const PROTOCOL_VERSION: u32 = 1;

/// Typed failures of the wire layer.  Decoding never panics: malformed,
/// truncated, corrupted or incompatible input always surfaces as one of
/// these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced structure was complete.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The frame body does not hash to the CRC in the frame header.
    CrcMismatch {
        /// CRC announced by the header.
        expected: u32,
        /// CRC computed over the received body.
        found: u32,
    },
    /// The stream does not start with the protocol magic — not a fusion
    /// peer, or the stream lost sync.
    BadMagic(u32),
    /// A frame header announced a body longer than [`MAX_FRAME_BYTES`].
    OversizedFrame {
        /// Announced body length.
        len: u64,
        /// The enforced ceiling.
        max: u64,
    },
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u32,
        /// The version the peer announced.
        theirs: u32,
    },
    /// The frame body starts with a tag no message is assigned to.
    UnknownTag(u8),
    /// A structurally invalid body: inconsistent lengths, dims that don't
    /// multiply out, non-UTF-8 text.
    Malformed(&'static str),
    /// An I/O failure of the underlying transport.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            WireError::CrcMismatch { expected, found } => {
                write!(f, "frame CRC mismatch: header says {expected:#010x}, body hashes to {found:#010x}")
            }
            WireError::BadMagic(got) => {
                write!(f, "bad frame magic {got:#010x}: not a fusion wire peer")
            }
            WireError::OversizedFrame { len, max } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds the {max}-byte ceiling"
                )
            }
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
            WireError::Malformed(what) => write!(f, "malformed frame body: {what}"),
            WireError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Result alias of the wire layer.
pub type Result<T> = std::result::Result<T, WireError>;
