//! Length-prefixed, CRC-checked frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! ┌──────────┬──────────┬──────────┬──────────────────────┐
//! │ magic    │ body len │ CRC-32   │ body (codec payload) │
//! │ u32 LE   │ u32 LE   │ u32 LE   │ `len` bytes          │
//! └──────────┴──────────┴──────────┴──────────────────────┘
//! ```
//!
//! The magic resynchronizes nothing — a stream that loses sync is dead —
//! but it turns "connected to the wrong service" into a typed
//! [`WireError::BadMagic`] instead of garbage decoding.  The CRC-32
//! (IEEE polynomial, the zlib/ethernet one) covers the body only; a length
//! beyond [`MAX_FRAME_BYTES`] is rejected *before* any allocation, so a
//! corrupted or hostile length prefix cannot OOM the receiver.

use crate::{Result, WireError};

/// `"FUS1"` little-endian: the frame magic.
pub const MAGIC: u32 = 0x3153_5546;

/// Bytes of the fixed frame header (magic + body length + CRC).
pub const FRAME_HEADER_BYTES: usize = 12;

/// Ceiling on a frame body.  The largest legitimate message — a transform
/// task carrying a full 320×320×105 scene as f64 plus the transform matrix
/// — is ≈ 86 MB; 256 MiB leaves generous headroom while still bounding a
/// corrupt length prefix.
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// CRC-32 (IEEE) lookup table, computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Wraps a codec body into a complete frame (header + body).
pub fn frame(body: &[u8]) -> Vec<u8> {
    debug_assert!(
        body.len() <= MAX_FRAME_BYTES,
        "encoder produced an oversized frame"
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Incremental frame parser over an arbitrary byte stream.
///
/// Transports push whatever bytes arrive — partial frames, several frames
/// at once — and pop complete, CRC-verified bodies.  Any header-level
/// violation (bad magic, oversized length, CRC mismatch) is a typed error;
/// a partial frame simply waits for more bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes received from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame body, `Ok(None)` if more bytes are
    /// needed, or a typed error if the buffered header is invalid.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(self.buf[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let len = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(WireError::OversizedFrame {
                len: len as u64,
                max: MAX_FRAME_BYTES as u64,
            });
        }
        let expected = u32::from_le_bytes(self.buf[8..12].try_into().expect("4 bytes"));
        if self.buf.len() < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let body: Vec<u8> = self.buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len].to_vec();
        let found = crc32(&body);
        if found != expected {
            return Err(WireError::CrcMismatch { expected, found });
        }
        self.buf.drain(..FRAME_HEADER_BYTES + len);
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE polynomial's classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_through_the_reader() {
        let mut reader = FrameReader::new();
        reader.push(&frame(b"alpha"));
        reader.push(&frame(b""));
        reader.push(&frame(b"bravo"));
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"alpha");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"bravo");
        assert_eq!(reader.next_frame().unwrap(), None);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let full = frame(b"split me");
        let mut reader = FrameReader::new();
        for chunk in full.chunks(3) {
            assert!(matches!(reader.next_frame(), Ok(None) | Ok(Some(_))));
            reader.push(chunk);
        }
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"split me");
    }

    #[test]
    fn bad_magic_is_a_typed_error() {
        let mut reader = FrameReader::new();
        reader.push(b"NOTAFRAMEHDR");
        assert!(matches!(reader.next_frame(), Err(WireError::BadMagic(_))));
    }

    #[test]
    fn corrupted_crc_is_a_typed_error() {
        let mut bytes = frame(b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        assert!(matches!(
            reader.next_frame(),
            Err(WireError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = frame(b"x");
        bytes[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        assert!(matches!(
            reader.next_frame(),
            Err(WireError::OversizedFrame { .. })
        ));
    }
}
