//! Fixed-layout little-endian codec for the fusion message set.
//!
//! Every body is `[tag u8][fields…]` with a fixed field order per tag and
//! no self-description: widths are part of the protocol version.  Scalars
//! are little-endian; `f64` travels as its IEEE-754 bit pattern, so a
//! round trip is *bit*-identical (NaN payloads and signed zeros included)
//! and the byte-identity oracle holds across the process boundary.
//!
//! Composite layouts:
//!
//! | type            | layout                                              |
//! |-----------------|-----------------------------------------------------|
//! | `TaskId`        | `u64`                                               |
//! | `Vector`        | `[len u32][f64 × len]`                              |
//! | `Vec<Vector>`   | `[count u32][Vector × count]`                       |
//! | `Matrix`        | `[rows u32][cols u32][f64 × rows·cols]` (row-major) |
//! | `Vec<u8>`/`str` | `[len u32][bytes]`                                  |
//! | `PctConfig`     | `[screening_angle_rad f64][output_components u32]`  |
//! | `CubeView`      | `[x0 u32][row_start u32][w u32][h u32][bands u32][f64 × w·h·bands]` |
//!
//! A `CubeView` encodes via [`CubeView::materialize`] — the single charged
//! deep-copy point — and decodes into a fresh owned shard wrapped in
//! [`CubeView::standalone`], preserving the window's scene coordinates.
//! [`encode_message`] `debug_assert`s, via the thread-local clone ledger,
//! that materialization is the *only* payload copy the encoder performed.

use crate::{frame, Result, WireError, PROTOCOL_VERSION};
use hsi::{CubeDims, CubeView, HyperCube};
use linalg::{Matrix, Vector};
use pct::messages::PctMessage;
use pct::PctConfig;
use std::sync::Arc;

/// A message on the wire: protocol control or fusion payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// The handshake frame: first thing each peer sends.
    Hello {
        /// The sender's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// A fusion protocol message.
    Pct(PctMessage),
}

impl WireMessage {
    /// A `Hello` announcing this build's protocol version.
    pub fn hello() -> Self {
        WireMessage::Hello {
            version: PROTOCOL_VERSION,
        }
    }
}

// Body tags.  Stable protocol constants: renumbering is a version bump.
const TAG_HELLO: u8 = 0;
const TAG_SCREEN_TASK: u8 = 1;
const TAG_UNIQUE_SET: u8 = 2;
const TAG_COVARIANCE_TASK: u8 = 3;
const TAG_COVARIANCE_SUM: u8 = 4;
const TAG_TRANSFORM_TASK: u8 = 5;
const TAG_RGB_STRIP: u8 = 6;
const TAG_SCREEN_SEEDED_TASK: u8 = 7;
const TAG_SEEDED_UNIQUE: u8 = 8;
const TAG_DERIVE_TASK: u8 = 9;
const TAG_DERIVED_TRANSFORM: u8 = 10;
const TAG_TASK_FAILED: u8 = 11;
const TAG_HEARTBEAT: u8 = 12;
const TAG_SHUTDOWN: u8 = 13;

// ----- encoding ---------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64s(out: &mut Vec<u8>, vs: &[f64]) {
    out.reserve(vs.len() * 8);
    for &v in vs {
        put_f64(out, v);
    }
}

fn put_vector(out: &mut Vec<u8>, v: &Vector) {
    put_u32(out, v.len() as u32);
    put_f64s(out, v.as_slice());
}

fn put_vectors(out: &mut Vec<u8>, vs: &[Vector]) {
    put_u32(out, vs.len() as u32);
    for v in vs {
        put_vector(out, v);
    }
}

fn put_matrix(out: &mut Vec<u8>, m: &Matrix) {
    put_u32(out, m.rows() as u32);
    put_u32(out, m.cols() as u32);
    put_f64s(out, m.as_slice());
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_view(out: &mut Vec<u8>, view: &CubeView) {
    // The one charged deep copy: window samples leave shared storage here.
    let shard = view.materialize();
    let dims = shard.dims();
    put_u32(out, view.x0() as u32);
    put_u32(out, view.row_start() as u32);
    put_u32(out, dims.width as u32);
    put_u32(out, dims.height as u32);
    put_u32(out, dims.bands as u32);
    put_f64s(out, shard.samples());
}

fn encode_body(msg: &WireMessage) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        WireMessage::Hello { version } => {
            out.push(TAG_HELLO);
            put_u32(&mut out, *version);
        }
        WireMessage::Pct(PctMessage::ScreenTask {
            task,
            view,
            threshold_rad,
        }) => {
            out.push(TAG_SCREEN_TASK);
            put_u64(&mut out, *task as u64);
            put_view(&mut out, view);
            put_f64(&mut out, *threshold_rad);
        }
        WireMessage::Pct(PctMessage::UniqueSet { task, unique }) => {
            out.push(TAG_UNIQUE_SET);
            put_u64(&mut out, *task as u64);
            put_vectors(&mut out, unique);
        }
        WireMessage::Pct(PctMessage::CovarianceTask { task, mean, pixels }) => {
            out.push(TAG_COVARIANCE_TASK);
            put_u64(&mut out, *task as u64);
            put_vector(&mut out, mean);
            put_vectors(&mut out, pixels);
        }
        WireMessage::Pct(PctMessage::CovarianceSum {
            task,
            packed,
            bands,
            count,
        }) => {
            out.push(TAG_COVARIANCE_SUM);
            put_u64(&mut out, *task as u64);
            put_u32(&mut out, packed.len() as u32);
            put_f64s(&mut out, packed);
            put_u32(&mut out, *bands as u32);
            put_u64(&mut out, *count);
        }
        WireMessage::Pct(PctMessage::TransformTask {
            task,
            view,
            mean,
            transform,
            scales,
        }) => {
            out.push(TAG_TRANSFORM_TASK);
            put_u64(&mut out, *task as u64);
            put_view(&mut out, view);
            put_vector(&mut out, mean);
            put_matrix(&mut out, transform);
            put_u32(&mut out, scales.len() as u32);
            for &(lo, hi) in scales {
                put_f64(&mut out, lo);
                put_f64(&mut out, hi);
            }
        }
        WireMessage::Pct(PctMessage::RgbStrip {
            task,
            row_start,
            rows,
            width,
            rgb,
        }) => {
            out.push(TAG_RGB_STRIP);
            put_u64(&mut out, *task as u64);
            put_u32(&mut out, *row_start as u32);
            put_u32(&mut out, *rows as u32);
            put_u32(&mut out, *width as u32);
            put_bytes(&mut out, rgb);
        }
        WireMessage::Pct(PctMessage::ScreenSeededTask {
            task,
            view,
            seed,
            threshold_rad,
        }) => {
            out.push(TAG_SCREEN_SEEDED_TASK);
            put_u64(&mut out, *task as u64);
            put_view(&mut out, view);
            put_vectors(&mut out, seed);
            put_f64(&mut out, *threshold_rad);
        }
        WireMessage::Pct(PctMessage::SeededUnique { task, accepted }) => {
            out.push(TAG_SEEDED_UNIQUE);
            put_u64(&mut out, *task as u64);
            put_vectors(&mut out, accepted);
        }
        WireMessage::Pct(PctMessage::DeriveTask {
            task,
            unique,
            config,
        }) => {
            out.push(TAG_DERIVE_TASK);
            put_u64(&mut out, *task as u64);
            put_vectors(&mut out, unique);
            put_f64(&mut out, config.screening_angle_rad);
            put_u32(&mut out, config.output_components as u32);
        }
        WireMessage::Pct(PctMessage::DerivedTransform {
            task,
            mean,
            transform,
            eigenvalues,
        }) => {
            out.push(TAG_DERIVED_TRANSFORM);
            put_u64(&mut out, *task as u64);
            put_vector(&mut out, mean);
            put_matrix(&mut out, transform);
            put_u32(&mut out, eigenvalues.len() as u32);
            put_f64s(&mut out, eigenvalues);
        }
        WireMessage::Pct(PctMessage::TaskFailed { task, error }) => {
            out.push(TAG_TASK_FAILED);
            put_u64(&mut out, *task as u64);
            put_bytes(&mut out, error.as_bytes());
        }
        WireMessage::Pct(PctMessage::Heartbeat) => out.push(TAG_HEARTBEAT),
        WireMessage::Pct(PctMessage::Shutdown) => out.push(TAG_SHUTDOWN),
    }
    out
}

/// Sub-cube payload bytes the encoder is *expected* to copy for `msg`: the
/// sum of its embedded views' [`CubeView::payload_bytes`].
fn expected_copy_bytes(msg: &WireMessage) -> u64 {
    match msg {
        WireMessage::Pct(m) => m.payload_bytes(),
        WireMessage::Hello { .. } => 0,
    }
}

/// Encodes a message into one complete frame (header + body).
///
/// In debug builds this asserts the wire invariant: the calling thread's
/// clone-ledger delta across encoding equals exactly the payload bytes of
/// the message's embedded views — i.e. [`CubeView::materialize`] is the
/// only deep copy the encoder performs, and every shipped payload byte is
/// charged to the ledger.
pub fn encode_message(msg: &WireMessage) -> Vec<u8> {
    let before = hsi::thread_cloned_bytes_total();
    let body = encode_body(msg);
    debug_assert_eq!(
        hsi::thread_cloned_bytes_total() - before,
        expected_copy_bytes(msg),
        "wire encode must deep-copy payload only via CubeView::materialize"
    );
    frame::frame(&body)
}

// ----- decoding ---------------------------------------------------------------

/// Cursor over a frame body with typed-error reads.  Every read checks the
/// remaining length first, so a hostile or truncated body can neither panic
/// nor trigger an oversized allocation (vectors are length-checked against
/// the bytes actually present before reserving).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn usize64(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| WireError::Malformed("u64 exceeds usize"))
    }

    fn f64s(&mut self, count: usize) -> Result<Vec<f64>> {
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or(WireError::Malformed("sample count overflows"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    fn vector(&mut self) -> Result<Vector> {
        let len = self.u32()? as usize;
        Ok(Vector::from_vec(self.f64s(len)?))
    }

    fn vectors(&mut self) -> Result<Vec<Vector>> {
        let count = self.u32()? as usize;
        // Each vector needs at least its 4-byte length prefix.
        if self.remaining()
            < count
                .checked_mul(4)
                .ok_or(WireError::Malformed("vector count overflows"))?
        {
            return Err(WireError::Truncated {
                needed: count * 4,
                have: self.remaining(),
            });
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(self.vector()?);
        }
        Ok(out)
    }

    fn matrix(&mut self) -> Result<Matrix> {
        let rows = self.u32()? as usize;
        let cols = self.u32()? as usize;
        let data = self.f64s(
            rows.checked_mul(cols)
                .ok_or(WireError::Malformed("matrix dims overflow"))?,
        )?;
        Matrix::from_row_major(rows, cols, data)
            .map_err(|_| WireError::Malformed("matrix dims inconsistent"))
    }

    fn byte_vec(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.byte_vec()?).map_err(|_| WireError::Malformed("non-UTF-8 text"))
    }

    fn view(&mut self) -> Result<CubeView> {
        let x0 = self.u32()? as usize;
        let row_start = self.u32()? as usize;
        let width = self.u32()? as usize;
        let height = self.u32()? as usize;
        let bands = self.u32()? as usize;
        let pixels = width
            .checked_mul(height)
            .ok_or(WireError::Malformed("view dims overflow"))?;
        let samples = self.f64s(
            pixels
                .checked_mul(bands)
                .ok_or(WireError::Malformed("view dims overflow"))?,
        )?;
        let shard = HyperCube::from_samples(CubeDims::new(width, height, bands), samples)
            .map_err(|_| WireError::Malformed("view dims inconsistent"))?;
        Ok(CubeView::standalone(Arc::new(shard), x0, row_start))
    }

    fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after message"));
        }
        Ok(())
    }
}

/// Decodes one frame *body* (as produced by [`FrameReader::next_frame`])
/// into a message.  Never panics: every malformation is a typed error.
///
/// [`FrameReader::next_frame`]: crate::frame::FrameReader::next_frame
pub fn decode_body(body: &[u8]) -> Result<WireMessage> {
    let mut r = Reader::new(body);
    let tag = r.u8()?;
    let msg = match tag {
        TAG_HELLO => WireMessage::Hello { version: r.u32()? },
        TAG_SCREEN_TASK => WireMessage::Pct(PctMessage::ScreenTask {
            task: r.usize64()?,
            view: r.view()?,
            threshold_rad: r.f64()?,
        }),
        TAG_UNIQUE_SET => WireMessage::Pct(PctMessage::UniqueSet {
            task: r.usize64()?,
            unique: r.vectors()?,
        }),
        TAG_COVARIANCE_TASK => WireMessage::Pct(PctMessage::CovarianceTask {
            task: r.usize64()?,
            mean: r.vector()?,
            pixels: r.vectors()?,
        }),
        TAG_COVARIANCE_SUM => {
            let task = r.usize64()?;
            let len = r.u32()? as usize;
            let packed = r.f64s(len)?;
            let bands = r.u32()? as usize;
            let count = r.u64()?;
            WireMessage::Pct(PctMessage::CovarianceSum {
                task,
                packed,
                bands,
                count,
            })
        }
        TAG_TRANSFORM_TASK => {
            let task = r.usize64()?;
            let view = r.view()?;
            let mean = r.vector()?;
            let transform = r.matrix()?;
            let n = r.u32()? as usize;
            let mut scales = Vec::with_capacity(n.min(r.remaining() / 16));
            for _ in 0..n {
                scales.push((r.f64()?, r.f64()?));
            }
            WireMessage::Pct(PctMessage::TransformTask {
                task,
                view,
                mean,
                transform,
                scales,
            })
        }
        TAG_RGB_STRIP => WireMessage::Pct(PctMessage::RgbStrip {
            task: r.usize64()?,
            row_start: r.u32()? as usize,
            rows: r.u32()? as usize,
            width: r.u32()? as usize,
            rgb: r.byte_vec()?,
        }),
        TAG_SCREEN_SEEDED_TASK => WireMessage::Pct(PctMessage::ScreenSeededTask {
            task: r.usize64()?,
            view: r.view()?,
            seed: r.vectors()?,
            threshold_rad: r.f64()?,
        }),
        TAG_SEEDED_UNIQUE => WireMessage::Pct(PctMessage::SeededUnique {
            task: r.usize64()?,
            accepted: r.vectors()?,
        }),
        TAG_DERIVE_TASK => WireMessage::Pct(PctMessage::DeriveTask {
            task: r.usize64()?,
            unique: r.vectors()?,
            config: PctConfig {
                screening_angle_rad: r.f64()?,
                output_components: r.u32()? as usize,
            },
        }),
        TAG_DERIVED_TRANSFORM => {
            let task = r.usize64()?;
            let mean = r.vector()?;
            let transform = r.matrix()?;
            let n = r.u32()? as usize;
            let eigenvalues = r.f64s(n)?;
            WireMessage::Pct(PctMessage::DerivedTransform {
                task,
                mean,
                transform,
                eigenvalues,
            })
        }
        TAG_TASK_FAILED => WireMessage::Pct(PctMessage::TaskFailed {
            task: r.usize64()?,
            error: r.string()?,
        }),
        TAG_HEARTBEAT => WireMessage::Pct(PctMessage::Heartbeat),
        TAG_SHUTDOWN => WireMessage::Pct(PctMessage::Shutdown),
        other => return Err(WireError::UnknownTag(other)),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameReader;

    fn coded_view(w: usize, h: usize, b: usize) -> CubeView {
        let dims = CubeDims::new(w, h, b);
        let mut cube = HyperCube::zeros(dims);
        for y in 0..h {
            for x in 0..w {
                let v: Vec<f64> = (0..b)
                    .map(|k| (x * 977 + y * 31 + k) as f64 * 0.5)
                    .collect();
                cube.set_pixel(x, y, &v).unwrap();
            }
        }
        CubeView::full(Arc::new(cube))
    }

    fn round_trip(msg: WireMessage) -> WireMessage {
        let frame = encode_message(&msg);
        let mut reader = FrameReader::new();
        reader.push(&frame);
        let body = reader.next_frame().unwrap().unwrap();
        decode_body(&body).unwrap()
    }

    #[test]
    fn every_message_kind_round_trips() {
        let view = coded_view(4, 3, 2);
        let vecs = vec![
            Vector::from_vec(vec![1.0, -2.5]),
            Vector::from_vec(vec![f64::MIN_POSITIVE, 0.0]),
        ];
        let matrix = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let messages = vec![
            WireMessage::hello(),
            WireMessage::Pct(PctMessage::ScreenTask {
                task: 7,
                view: view.clone(),
                threshold_rad: 0.087,
            }),
            WireMessage::Pct(PctMessage::UniqueSet {
                task: 8,
                unique: vecs.clone(),
            }),
            WireMessage::Pct(PctMessage::CovarianceTask {
                task: 9,
                mean: vecs[0].clone(),
                pixels: vecs.clone(),
            }),
            WireMessage::Pct(PctMessage::CovarianceSum {
                task: 10,
                packed: vec![0.25, -0.5, 1e300],
                bands: 2,
                count: 42,
            }),
            WireMessage::Pct(PctMessage::TransformTask {
                task: 11,
                view: view.clone(),
                mean: vecs[1].clone(),
                transform: matrix.clone(),
                scales: vec![(0.0, 1.0), (-3.5, 3.5)],
            }),
            WireMessage::Pct(PctMessage::RgbStrip {
                task: 12,
                row_start: 5,
                rows: 2,
                width: 4,
                rgb: vec![0, 127, 255, 1, 2, 3],
            }),
            WireMessage::Pct(PctMessage::ScreenSeededTask {
                task: 13,
                view: view.clone(),
                seed: vecs.clone(),
                threshold_rad: 0.1,
            }),
            WireMessage::Pct(PctMessage::SeededUnique {
                task: 14,
                accepted: vec![],
            }),
            WireMessage::Pct(PctMessage::DeriveTask {
                task: 15,
                unique: vecs.clone(),
                config: PctConfig {
                    screening_angle_rad: 0.0874,
                    output_components: 3,
                },
            }),
            WireMessage::Pct(PctMessage::DerivedTransform {
                task: 16,
                mean: vecs[0].clone(),
                transform: matrix,
                eigenvalues: vec![3.0, 1.0, 0.25],
            }),
            WireMessage::Pct(PctMessage::TaskFailed {
                task: 17,
                error: "solver diverged: λ≈∞".to_string(),
            }),
            WireMessage::Pct(PctMessage::Heartbeat),
            WireMessage::Pct(PctMessage::Shutdown),
        ];
        for msg in messages {
            assert_eq!(round_trip(msg.clone()), msg);
        }
    }

    #[test]
    fn decoded_views_preserve_scene_coordinates() {
        let cube = {
            let mut c = HyperCube::zeros(CubeDims::new(6, 5, 3));
            for y in 0..5 {
                for x in 0..6 {
                    let v: Vec<f64> = (0..3).map(|b| (x + 10 * y + 100 * b) as f64).collect();
                    c.set_pixel(x, y, &v).unwrap();
                }
            }
            Arc::new(c)
        };
        let window = CubeView::window(Arc::clone(&cube), 2, 1, 3, 4).unwrap();
        let msg = WireMessage::Pct(PctMessage::ScreenTask {
            task: 0,
            view: window.clone(),
            threshold_rad: 0.05,
        });
        let decoded = round_trip(msg);
        let WireMessage::Pct(PctMessage::ScreenTask { view, .. }) = decoded else {
            panic!("wrong variant");
        };
        assert_eq!(view.x0(), 2);
        assert_eq!(view.row_start(), 1);
        assert_eq!(view, window);
    }

    #[test]
    fn encode_charges_exactly_the_view_payload_to_the_ledger() {
        let view = coded_view(5, 4, 3);
        let msg = WireMessage::Pct(PctMessage::ScreenTask {
            task: 1,
            view: view.clone(),
            threshold_rad: 0.1,
        });
        let before = hsi::thread_cloned_bytes_total();
        encode_message(&msg);
        assert_eq!(
            hsi::thread_cloned_bytes_total() - before,
            view.payload_bytes() as u64
        );
        // Payload-free messages charge nothing.
        let before = hsi::thread_cloned_bytes_total();
        encode_message(&WireMessage::Pct(PctMessage::Heartbeat));
        assert_eq!(hsi::thread_cloned_bytes_total() - before, 0);
    }

    #[test]
    fn unknown_tags_and_truncations_are_typed_errors() {
        assert_eq!(decode_body(&[200]), Err(WireError::UnknownTag(200)));
        assert!(matches!(decode_body(&[]), Err(WireError::Truncated { .. })));
        // A screen task cut short mid-view.
        let frame_bytes = encode_message(&WireMessage::Pct(PctMessage::ScreenTask {
            task: 1,
            view: coded_view(3, 3, 2),
            threshold_rad: 0.1,
        }));
        let mut reader = FrameReader::new();
        reader.push(&frame_bytes);
        let body = reader.next_frame().unwrap().unwrap();
        assert!(matches!(
            decode_body(&body[..body.len() / 2]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage after a complete message is malformed, not ignored.
        let mut extended = body;
        extended.push(0);
        assert!(matches!(
            decode_body(&extended),
            Err(WireError::Malformed(_))
        ));
    }
}
