//! Message transports: loopback for deterministic tests, TCP for real
//! worker processes.
//!
//! A [`Transport`] moves whole [`WireMessage`]s; framing, CRC checks and
//! codec work happen inside the impls so callers never see partial frames.
//! [`handshake`] runs the symmetric version exchange both peers perform
//! before any payload flows.

use crate::codec::{decode_body, encode_message, WireMessage};
use crate::frame::FrameReader;
use crate::{Result, WireError, PROTOCOL_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// A bidirectional, message-oriented connection to one peer.
pub trait Transport: Send {
    /// Encodes and sends one message.
    fn send(&mut self, msg: &WireMessage) -> Result<()>;

    /// Receives the next message, waiting at most `timeout`.  `Ok(None)`
    /// means the timeout elapsed with no complete frame; errors are
    /// connection-fatal (including a cleanly closed peer).
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<WireMessage>>;

    /// A human-readable label of the peer, for logs and errors.
    fn peer(&self) -> String;
}

/// Runs the protocol-version handshake on a fresh connection.
///
/// Both sides send `Hello{version}` first, then read the peer's.  The
/// exchange is symmetric — neither side is the "client" — and safe on both
/// transports because a `Hello` frame is tiny and never blocks a send.
/// Any non-`Hello` first frame is [`WireError::Malformed`]; a differing
/// version is [`WireError::VersionMismatch`].
pub fn handshake(transport: &mut dyn Transport, timeout: Duration) -> Result<()> {
    transport.send(&WireMessage::hello())?;
    match transport.recv_timeout(timeout)? {
        Some(WireMessage::Hello { version }) if version == PROTOCOL_VERSION => Ok(()),
        Some(WireMessage::Hello { version }) => Err(WireError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs: version,
        }),
        Some(_) => Err(WireError::Malformed("peer spoke before the handshake")),
        None => Err(WireError::Io(format!(
            "handshake with {} timed out",
            transport.peer()
        ))),
    }
}

/// In-process transport endpoint carrying *real encoded frames* over
/// channels — the codec and framing layers run exactly as they do over
/// TCP, only the socket is simulated.
pub struct LoopbackTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    reader: FrameReader,
    label: String,
}

/// A connected pair of loopback endpoints.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    (
        LoopbackTransport {
            tx: a_tx,
            rx: a_rx,
            reader: FrameReader::new(),
            label: "loopback:a".to_string(),
        },
        LoopbackTransport {
            tx: b_tx,
            rx: b_rx,
            reader: FrameReader::new(),
            label: "loopback:b".to_string(),
        },
    )
}

impl Transport for LoopbackTransport {
    fn send(&mut self, msg: &WireMessage) -> Result<()> {
        self.tx
            .send(encode_message(msg))
            .map_err(|_| WireError::Io("loopback peer closed".to_string()))
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<WireMessage>> {
        // Frames may arrive in arbitrary chunks in principle; feed them
        // through the same FrameReader the TCP path uses.
        loop {
            if let Some(body) = self.reader.next_frame()? {
                return Ok(Some(decode_body(&body)?));
            }
            match self.rx.recv_timeout(timeout) {
                Ok(bytes) => self.reader.push(&bytes),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(WireError::Io("loopback peer closed".to_string()))
                }
            }
        }
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}

/// Framed transport over a `std::net::TcpStream`.
///
/// Receives buffer partial frames across calls — a message split over many
/// TCP segments reassembles transparently — and a read timeout that
/// expires mid-frame simply returns `Ok(None)` without losing sync.
pub struct TcpTransport {
    stream: TcpStream,
    reader: FrameReader,
    peer: String,
}

impl TcpTransport {
    /// Wraps a connected stream.  Disables Nagle so small task/heartbeat
    /// frames don't sit in the kernel behind a timer.
    pub fn new(stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp:unknown".to_string());
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            peer,
        })
    }

    /// Connects to a listening peer.
    pub fn connect(addr: &str) -> Result<Self> {
        Self::new(TcpStream::connect(addr)?)
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &WireMessage) -> Result<()> {
        let frame = encode_message(msg);
        self.stream.write_all(&frame)?;
        Ok(())
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<WireMessage>> {
        // A zero timeout would mean "block forever" to the socket API.
        let timeout = timeout.max(Duration::from_millis(1));
        self.stream.set_read_timeout(Some(timeout))?;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some(body) = self.reader.next_frame()? {
                return Ok(Some(decode_body(&body)?));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(WireError::Io(format!(
                        "{} closed the connection",
                        self.peer
                    )))
                }
                Ok(n) => self.reader.push(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None)
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pct::messages::PctMessage;
    use std::net::TcpListener;

    const TICK: Duration = Duration::from_millis(200);

    #[test]
    fn loopback_delivers_messages_and_times_out_when_idle() {
        let (mut a, mut b) = loopback_pair();
        a.send(&WireMessage::Pct(PctMessage::Heartbeat)).unwrap();
        assert_eq!(
            b.recv_timeout(TICK).unwrap(),
            Some(WireMessage::Pct(PctMessage::Heartbeat))
        );
        assert_eq!(b.recv_timeout(Duration::from_millis(5)).unwrap(), None);
    }

    #[test]
    fn loopback_handshake_succeeds_between_same_versions() {
        let (mut a, mut b) = loopback_pair();
        let t = std::thread::spawn(move || {
            handshake(&mut b, TICK).unwrap();
            b
        });
        handshake(&mut a, TICK).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let (mut a, mut b) = loopback_pair();
        // A peer from the future announces v999.
        b.send(&WireMessage::Hello { version: 999 }).unwrap();
        let err = handshake(&mut a, TICK).unwrap_err();
        assert_eq!(
            err,
            WireError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: 999
            }
        );
    }

    #[test]
    fn dropped_loopback_peer_is_a_connection_error() {
        let (mut a, b) = loopback_pair();
        drop(b);
        assert!(matches!(
            a.recv_timeout(Duration::from_millis(5)),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn tcp_round_trips_messages_between_threads() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::new(stream).unwrap();
            handshake(&mut t, TICK).unwrap();
            // Echo one message back.
            loop {
                if let Some(msg) = t.recv_timeout(TICK).unwrap() {
                    t.send(&msg).unwrap();
                    break;
                }
            }
        });
        let mut client = TcpTransport::connect(&addr).unwrap();
        handshake(&mut client, TICK).unwrap();
        let msg = WireMessage::Pct(PctMessage::TaskFailed {
            task: 3,
            error: "boom".to_string(),
        });
        client.send(&msg).unwrap();
        let mut echoed = None;
        for _ in 0..50 {
            if let Some(m) = client.recv_timeout(TICK).unwrap() {
                echoed = Some(m);
                break;
            }
        }
        assert_eq!(echoed, Some(msg));
        server.join().unwrap();
    }

    #[test]
    fn tcp_peer_close_is_a_connection_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
        });
        let mut client = TcpTransport::connect(&addr).unwrap();
        server.join().unwrap();
        let mut saw_error = false;
        for _ in 0..50 {
            match client.recv_timeout(Duration::from_millis(20)) {
                Err(WireError::Io(_)) => {
                    saw_error = true;
                    break;
                }
                Ok(None) => continue,
                other => panic!("unexpected: {other:?}"),
            }
        }
        assert!(saw_error, "closed peer never surfaced as an error");
    }
}
