//! Heartbeat-based failure detection ("attack assessment").
//!
//! Members of every replica group periodically send heartbeats to a monitor.
//! A member whose heartbeat has not been seen for more than
//! `miss_threshold × heartbeat_period` is declared failed; the regeneration
//! protocol then restores the group's replication level.  The detector is
//! written against an explicit millisecond clock rather than `Instant` so
//! detection latency and false-positive behaviour are deterministic in tests
//! and in the detector-ablation benchmark.

use crate::group::MemberId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Detector tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Expected interval between heartbeats from a healthy member, in
    /// milliseconds of the monitoring clock.
    pub heartbeat_period_ms: u64,
    /// Number of consecutive missed heartbeats before a member is declared
    /// failed.  Larger values tolerate jitter but detect real failures more
    /// slowly.
    pub miss_threshold: u32,
}

impl DetectorConfig {
    /// A configuration matching the prototype described in the paper:
    /// heartbeats every 250 ms, declared failed after four misses (1 s).
    pub fn default_lan() -> Self {
        Self {
            heartbeat_period_ms: 250,
            miss_threshold: 4,
        }
    }

    /// Time after the last heartbeat at which a member is declared failed.
    pub fn failure_timeout_ms(&self) -> u64 {
        self.heartbeat_period_ms * self.miss_threshold as u64
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::default_lan()
    }
}

/// Health assessment of a single member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberHealth {
    /// Heartbeats are arriving on schedule.
    Healthy,
    /// At least one heartbeat has been missed but the failure threshold has
    /// not yet been crossed.
    Suspect,
    /// The failure threshold has been crossed.
    Failed,
}

/// A deterministic heartbeat failure detector.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: DetectorConfig,
    last_heartbeat: BTreeMap<MemberId, u64>,
    declared_failed: BTreeMap<MemberId, u64>,
    telemetry: telemetry::Telemetry,
}

impl FailureDetector {
    /// Creates a detector.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            config,
            last_heartbeat: BTreeMap::new(),
            declared_failed: BTreeMap::new(),
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: every newly declared failure is
    /// recorded as a `member_failed` instant and counted in
    /// `resilience_members_failed_total`.
    pub fn with_telemetry(mut self, telemetry: telemetry::Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// In-place variant of [`FailureDetector::with_telemetry`].
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// The detector's configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Starts monitoring a member as of `now_ms` (counts as a heartbeat).
    pub fn watch(&mut self, member: MemberId, now_ms: u64) {
        self.last_heartbeat.insert(member, now_ms);
    }

    /// Stops monitoring a member (it exited cleanly or was superseded).
    pub fn unwatch(&mut self, member: &MemberId) {
        self.last_heartbeat.remove(member);
        self.declared_failed.remove(member);
    }

    /// Records a heartbeat from a member at `now_ms`.  A heartbeat from a
    /// member previously declared failed clears the declaration (it was a
    /// false positive — e.g. a transient network partition).
    pub fn heartbeat(&mut self, member: &MemberId, now_ms: u64) {
        self.last_heartbeat.insert(member.clone(), now_ms);
        self.declared_failed.remove(member);
    }

    /// Health of one member at `now_ms`.
    pub fn health(&self, member: &MemberId, now_ms: u64) -> MemberHealth {
        let Some(&last) = self.last_heartbeat.get(member) else {
            return MemberHealth::Failed;
        };
        let silence = now_ms.saturating_sub(last);
        if silence >= self.config.failure_timeout_ms() {
            MemberHealth::Failed
        } else if silence >= self.config.heartbeat_period_ms.saturating_mul(2) {
            MemberHealth::Suspect
        } else {
            MemberHealth::Healthy
        }
    }

    /// Sweeps all watched members at `now_ms` and returns the members that
    /// are *newly* declared failed (each failure is reported exactly once
    /// unless a later heartbeat clears it).
    pub fn sweep(&mut self, now_ms: u64) -> Vec<MemberId> {
        let mut newly_failed = Vec::new();
        let members: Vec<MemberId> = self.last_heartbeat.keys().cloned().collect();
        for member in members {
            if self.health(&member, now_ms) == MemberHealth::Failed
                && !self.declared_failed.contains_key(&member)
            {
                self.declared_failed.insert(member.clone(), now_ms);
                self.telemetry
                    .instant("member_failed", None, None, &member.routing_name());
                self.telemetry.count("resilience_members_failed_total", &[]);
                newly_failed.push(member);
            }
        }
        newly_failed
    }

    /// Number of members currently being monitored.
    pub fn watched(&self) -> usize {
        self.last_heartbeat.len()
    }

    /// Detection latency of this configuration: the worst-case time between
    /// a member dying (just after a heartbeat) and the sweep that reports
    /// it, assuming sweeps run every `sweep_period_ms`.
    pub fn worst_case_detection_ms(&self, sweep_period_ms: u64) -> u64 {
        self.config.failure_timeout_ms() + sweep_period_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member(i: usize) -> MemberId {
        MemberId::new(format!("w{i}"), 0)
    }

    #[test]
    fn healthy_member_stays_healthy_with_regular_heartbeats() {
        let mut d = FailureDetector::new(DetectorConfig::default_lan());
        d.watch(member(0), 0);
        for t in (250..5000).step_by(250) {
            d.heartbeat(&member(0), t);
            assert_eq!(d.health(&member(0), t), MemberHealth::Healthy);
            assert!(d.sweep(t).is_empty());
        }
    }

    #[test]
    fn silent_member_becomes_suspect_then_failed() {
        let config = DetectorConfig {
            heartbeat_period_ms: 100,
            miss_threshold: 4,
        };
        let mut d = FailureDetector::new(config);
        d.watch(member(1), 0);
        assert_eq!(d.health(&member(1), 150), MemberHealth::Healthy);
        assert_eq!(d.health(&member(1), 250), MemberHealth::Suspect);
        assert_eq!(d.health(&member(1), 399), MemberHealth::Suspect);
        assert_eq!(d.health(&member(1), 400), MemberHealth::Failed);
    }

    #[test]
    fn sweep_reports_each_failure_once() {
        let mut d = FailureDetector::new(DetectorConfig {
            heartbeat_period_ms: 100,
            miss_threshold: 2,
        });
        d.watch(member(0), 0);
        d.watch(member(1), 0);
        d.heartbeat(&member(1), 150); // member 1 stays alive longer
        let first = d.sweep(250);
        assert_eq!(first, vec![member(0)]);
        assert!(
            d.sweep(260).is_empty(),
            "already-declared failure must not repeat"
        );
        let second = d.sweep(400);
        assert_eq!(second, vec![member(1)]);
    }

    #[test]
    fn late_heartbeat_clears_a_false_positive() {
        let mut d = FailureDetector::new(DetectorConfig {
            heartbeat_period_ms: 100,
            miss_threshold: 2,
        });
        d.watch(member(0), 0);
        assert_eq!(d.sweep(250), vec![member(0)]);
        // The member was only partitioned; its heartbeat resumes.
        d.heartbeat(&member(0), 300);
        assert_eq!(d.health(&member(0), 310), MemberHealth::Healthy);
        // If it goes silent again it is reported again.
        assert_eq!(d.sweep(600), vec![member(0)]);
    }

    #[test]
    fn unwatched_member_is_reported_failed_by_health_but_not_swept() {
        let mut d = FailureDetector::new(DetectorConfig::default_lan());
        assert_eq!(d.health(&member(9), 0), MemberHealth::Failed);
        assert!(d.sweep(10_000).is_empty());
        d.watch(member(9), 0);
        assert_eq!(d.watched(), 1);
        d.unwatch(&member(9));
        assert_eq!(d.watched(), 0);
    }

    #[test]
    fn detection_latency_formula() {
        let d = FailureDetector::new(DetectorConfig {
            heartbeat_period_ms: 250,
            miss_threshold: 4,
        });
        assert_eq!(d.config().failure_timeout_ms(), 1000);
        assert_eq!(d.worst_case_detection_ms(100), 1100);
    }
}
