//! Replica groups: one logical thread, several physical members.
//!
//! A logical worker `worker3` replicated to level 2 is backed by two member
//! threads, `worker3#0` and `worker3#1` (Figure 1's "shadow threads").  The
//! manager addresses the *group*: [`GroupSender`] fans each message out to
//! every live member, and because all members process the same inputs in the
//! same order they produce the same results with the same sequence numbers,
//! which the receiver's deduplication collapses back to a single logical
//! stream.  Membership is tracked in a shared [`MembershipTable`] that the
//! failure detector and the regeneration protocol update.

use crate::{ResilienceError, Result};
use parking_lot::RwLock;
use scp::{Router, SeqNum};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of one physical member of a replica group.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MemberId {
    /// The logical group (thread) name, e.g. `worker3`.
    pub group: String,
    /// Incarnation number distinguishing members and their regenerated
    /// replacements: the original members are 0..level, replacements keep
    /// counting upward.
    pub incarnation: usize,
}

impl MemberId {
    /// Creates a member id.
    pub fn new(group: impl Into<String>, incarnation: usize) -> Self {
        Self {
            group: group.into(),
            incarnation,
        }
    }

    /// The routing name of this member (`group#incarnation`).
    pub fn routing_name(&self) -> String {
        format!("{}#{}", self.group, self.incarnation)
    }

    /// Parses a routing name back into a member id.
    pub fn parse(routing_name: &str) -> Option<MemberId> {
        let (group, inc) = routing_name.rsplit_once('#')?;
        Some(MemberId {
            group: group.to_string(),
            incarnation: inc.parse().ok()?,
        })
    }
}

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.routing_name())
    }
}

/// A replica group descriptor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaGroup {
    /// Logical name of the group.
    pub name: String,
    /// Target replication level.
    pub level: usize,
    /// Live members (routing incarnations currently believed healthy).
    pub members: Vec<MemberId>,
    /// Node each member lives on (parallel to `members`); the placement
    /// policy uses this to avoid co-locating members.
    pub placements: Vec<usize>,
    /// Next incarnation number to assign to a regenerated member.
    pub next_incarnation: usize,
}

impl ReplicaGroup {
    /// Creates a group with `level` initial members placed on `nodes`
    /// (cycled if shorter than `level`).
    pub fn new(name: impl Into<String>, level: usize, nodes: &[usize]) -> Result<Self> {
        let name = name.into();
        let level = level.max(1);
        if nodes.is_empty() {
            return Err(ResilienceError::InvalidConfig(format!(
                "group '{name}' needs at least one node to place members on"
            )));
        }
        let members = (0..level).map(|i| MemberId::new(name.clone(), i)).collect();
        let placements = (0..level).map(|i| nodes[i % nodes.len()]).collect();
        Ok(Self {
            name,
            level,
            members,
            placements,
            next_incarnation: level,
        })
    }

    /// Whether the group still has at least one live member.
    pub fn is_alive(&self) -> bool {
        !self.members.is_empty()
    }

    /// Whether the group is below its target replication level.
    pub fn is_degraded(&self) -> bool {
        self.members.len() < self.level
    }

    /// Removes a member (because it failed); returns `true` if it was
    /// present.
    pub fn remove_member(&mut self, member: &MemberId) -> bool {
        if let Some(pos) = self.members.iter().position(|m| m == member) {
            self.members.remove(pos);
            self.placements.remove(pos);
            true
        } else {
            false
        }
    }

    /// Adds a regenerated member on `node` and returns its id.
    pub fn add_member(&mut self, node: usize) -> MemberId {
        let member = MemberId::new(self.name.clone(), self.next_incarnation);
        self.next_incarnation += 1;
        self.members.push(member.clone());
        self.placements.push(node);
        member
    }

    /// Nodes currently hosting members of this group.
    pub fn occupied_nodes(&self) -> Vec<usize> {
        self.placements.clone()
    }
}

/// Shared, concurrently updatable table of every replica group.
#[derive(Clone, Default)]
pub struct MembershipTable {
    groups: Arc<RwLock<BTreeMap<String, ReplicaGroup>>>,
}

impl MembershipTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a group.
    pub fn insert(&self, group: ReplicaGroup) {
        self.groups.write().insert(group.name.clone(), group);
    }

    /// Returns a snapshot of a group.
    pub fn get(&self, name: &str) -> Result<ReplicaGroup> {
        self.groups
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ResilienceError::UnknownGroup(name.to_string()))
    }

    /// Applies a mutation to a group under the write lock.
    pub fn update<T>(&self, name: &str, f: impl FnOnce(&mut ReplicaGroup) -> T) -> Result<T> {
        let mut groups = self.groups.write();
        let group = groups
            .get_mut(name)
            .ok_or_else(|| ResilienceError::UnknownGroup(name.to_string()))?;
        Ok(f(group))
    }

    /// Names of all groups, sorted.
    pub fn group_names(&self) -> Vec<String> {
        self.groups.read().keys().cloned().collect()
    }

    /// Live members across all groups.
    pub fn all_members(&self) -> Vec<MemberId> {
        self.groups
            .read()
            .values()
            .flat_map(|g| g.members.iter().cloned())
            .collect()
    }

    /// Groups currently below their target replication level.
    pub fn degraded_groups(&self) -> Vec<String> {
        self.groups
            .read()
            .values()
            .filter(|g| g.is_degraded())
            .map(|g| g.name.clone())
            .collect()
    }
}

/// Sends messages to every live member of a group.
pub struct GroupSender<M> {
    router: Router<M>,
    membership: MembershipTable,
    from: String,
    next_seq: SeqNum,
}

impl<M: Clone> GroupSender<M> {
    /// Creates a group sender for messages originating from `from`.
    pub fn new(router: Router<M>, membership: MembershipTable, from: impl Into<String>) -> Self {
        Self {
            router,
            membership,
            from: from.into(),
            next_seq: SeqNum::FIRST,
        }
    }

    /// The sequence number the next group send will carry.
    pub fn next_seq(&self) -> SeqNum {
        self.next_seq
    }

    /// Sends `payload` to every live member of `group` with a single logical
    /// sequence number.  Returns the number of members reached.  Members
    /// whose mailboxes are gone are skipped (the failure detector will deal
    /// with them); it is an error only if the group has no members at all.
    pub fn send_to_group(&mut self, group: &str, payload: M) -> Result<usize> {
        let snapshot = self.membership.get(group)?;
        if snapshot.members.is_empty() {
            return Err(ResilienceError::GroupExhausted(group.to_string()));
        }
        let seq = self.next_seq;
        self.next_seq = self.next_seq.next();
        let mut reached = 0;
        for member in &snapshot.members {
            let result = self.router.send(
                self.from.clone(),
                member.routing_name(),
                seq,
                payload.clone(),
            );
            if result.is_ok() {
                reached += 1;
            }
        }
        Ok(reached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_routing_name_round_trips() {
        let m = MemberId::new("worker3", 1);
        assert_eq!(m.routing_name(), "worker3#1");
        assert_eq!(MemberId::parse("worker3#1"), Some(m));
        assert_eq!(MemberId::parse("garbage"), None);
        assert_eq!(MemberId::parse("worker#x"), None);
    }

    #[test]
    fn new_group_has_level_members_spread_over_nodes() {
        let g = ReplicaGroup::new("w0", 2, &[3, 5, 7]).unwrap();
        assert_eq!(g.members.len(), 2);
        assert_eq!(g.placements, vec![3, 5]);
        assert!(g.is_alive());
        assert!(!g.is_degraded());
    }

    #[test]
    fn group_needs_nodes() {
        assert!(ReplicaGroup::new("w0", 2, &[]).is_err());
    }

    #[test]
    fn removing_members_degrades_then_kills_the_group() {
        let mut g = ReplicaGroup::new("w0", 2, &[0, 1]).unwrap();
        let first = g.members[0].clone();
        assert!(g.remove_member(&first));
        assert!(g.is_degraded());
        assert!(g.is_alive());
        let second = g.members[0].clone();
        assert!(g.remove_member(&second));
        assert!(!g.is_alive());
        assert!(!g.remove_member(&first));
    }

    #[test]
    fn regenerated_members_get_fresh_incarnations() {
        let mut g = ReplicaGroup::new("w0", 2, &[0, 1]).unwrap();
        let lost = g.members[1].clone();
        g.remove_member(&lost);
        let replacement = g.add_member(4);
        assert_eq!(replacement.incarnation, 2);
        assert_eq!(g.members.len(), 2);
        assert!(!g.is_degraded());
        assert_eq!(g.occupied_nodes(), vec![0, 4]);
    }

    #[test]
    fn membership_table_lookup_and_update() {
        let table = MembershipTable::new();
        table.insert(ReplicaGroup::new("w0", 2, &[0, 1]).unwrap());
        table.insert(ReplicaGroup::new("w1", 2, &[2, 3]).unwrap());
        assert_eq!(
            table.group_names(),
            vec!["w0".to_string(), "w1".to_string()]
        );
        assert_eq!(table.all_members().len(), 4);
        assert!(table.get("w2").is_err());

        table
            .update("w0", |g| {
                let m = g.members[0].clone();
                g.remove_member(&m);
            })
            .unwrap();
        assert_eq!(table.degraded_groups(), vec!["w0".to_string()]);
    }

    #[test]
    fn group_send_reaches_every_member_with_one_seq() {
        let router: Router<&'static str> = Router::new();
        let table = MembershipTable::new();
        table.insert(ReplicaGroup::new("w0", 2, &[0, 1]).unwrap());
        let rx0 = router.register("w0#0").unwrap();
        let rx1 = router.register("w0#1").unwrap();

        let mut sender = GroupSender::new(router, table, "manager");
        let reached = sender.send_to_group("w0", "task").unwrap();
        assert_eq!(reached, 2);
        let e0 = rx0.recv().unwrap();
        let e1 = rx1.recv().unwrap();
        assert_eq!(e0.seq, e1.seq);
        assert_eq!(e0.payload, "task");
        assert_eq!(sender.next_seq(), SeqNum(2));
    }

    #[test]
    fn group_send_skips_dead_mailboxes_but_fails_on_empty_group() {
        let router: Router<u8> = Router::new();
        let table = MembershipTable::new();
        table.insert(ReplicaGroup::new("w0", 2, &[0, 1]).unwrap());
        let _rx0 = router.register("w0#0").unwrap();
        // w0#1 never registers: its sends fail, but the group send succeeds.
        let mut sender = GroupSender::new(router, table.clone(), "manager");
        assert_eq!(sender.send_to_group("w0", 1).unwrap(), 1);

        // Remove every member: the group is exhausted.
        table
            .update("w0", |g| {
                for m in g.members.clone() {
                    g.remove_member(&m);
                }
            })
            .unwrap();
        assert!(matches!(
            sender.send_to_group("w0", 2),
            Err(ResilienceError::GroupExhausted(_))
        ));
    }

    #[test]
    fn unknown_group_send_errors() {
        let router: Router<u8> = Router::new();
        let mut sender = GroupSender::new(router, MembershipTable::new(), "manager");
        assert!(matches!(
            sender.send_to_group("ghost", 0),
            Err(ResilienceError::UnknownGroup(_))
        ));
    }
}
