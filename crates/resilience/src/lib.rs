//! Computational resiliency library.
//!
//! The paper's central idea is that replication alone only provides graceful
//! degradation: each failure permanently consumes a replica until the system
//! dies.  *Computational resiliency* goes further — the system detects the
//! loss (attack assessment), regenerates the lost replica at another
//! location with sufficient resources, and reconfigures communication so the
//! application never notices.  The concepts are provided as an
//! application-independent library layered on the `scp` message-passing
//! substrate, exactly as the paper layers its protocols on SCPlib.
//!
//! The pieces:
//!
//! * [`policy`] — replication policies: how many replicas each
//!   mission-critical thread gets and where they are placed.  The paper
//!   replicates all workers to level 2 and leaves the manager (the sensor)
//!   unreplicated.
//! * [`group`] — replica groups: a logical thread name backed by several
//!   physical member threads, with group send (every live member receives
//!   each message) and membership tracking.
//! * [`detector`] — heartbeat-based failure detection with a deterministic
//!   clock so detection latency and false-positive behaviour are testable.
//! * [`regen`] — the regeneration protocol: pick a placement for the
//!   replacement member, rebind its name in the router, restart it from the
//!   group's state, and bring membership back to the target level.
//! * [`attack`] — kill switches used to emulate information-warfare attacks
//!   against live worker threads in examples and tests.
//! * [`overhead`] — an analytic accounting of the protocol overhead
//!   (duplicate payloads, acknowledgements, heartbeats) used by the
//!   simulator-driven benchmarks to charge resiliency costs, and by
//!   EXPERIMENTS.md to decompose the ≈10 % overhead the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod detector;
pub mod group;
pub mod overhead;
pub mod policy;
pub mod regen;

pub use attack::KillSwitch;
pub use detector::{DetectorConfig, FailureDetector, MemberHealth};
pub use group::{GroupSender, MemberId, MembershipTable, ReplicaGroup};
pub use overhead::OverheadModel;
pub use policy::{PlacementPolicy, ReplicationPolicy};
pub use regen::{RegenerationEvent, Regenerator};

/// Errors produced by the resiliency layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilienceError {
    /// The named replica group does not exist.
    UnknownGroup(String),
    /// The named member does not exist within its group.
    UnknownMember(String),
    /// No live member remains and no resources are available to regenerate.
    GroupExhausted(String),
    /// An error bubbled up from the message-passing layer.
    Scp(scp::ScpError),
    /// An invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilienceError::UnknownGroup(g) => write!(f, "unknown replica group '{g}'"),
            ResilienceError::UnknownMember(m) => write!(f, "unknown group member '{m}'"),
            ResilienceError::GroupExhausted(g) => {
                write!(
                    f,
                    "replica group '{g}' has no live members and cannot be regenerated"
                )
            }
            ResilienceError::Scp(e) => write!(f, "message-passing error: {e}"),
            ResilienceError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ResilienceError {}

impl From<scp::ScpError> for ResilienceError {
    fn from(e: scp::ScpError) -> Self {
        ResilienceError::Scp(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ResilienceError>;
