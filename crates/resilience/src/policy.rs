//! Replication and placement policies.
//!
//! "In any realistic system, there will never be sufficient resources to
//! replicate all resources, therefore some policy-based methods for
//! controlling replication are required."  A [`ReplicationPolicy`] states how
//! many physical members each mission-critical thread gets; a
//! [`PlacementPolicy`] decides where members (and regenerated replacements)
//! live, preferring to spread a group across distinct nodes so one node
//! failure cannot take out a whole group.

use serde::{Deserialize, Serialize};

/// How many replicas a thread receives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicationPolicy {
    /// Replication level for mission-critical (worker) threads.  Level 1
    /// means no redundancy; level 2 is the configuration evaluated in
    /// Figure 4.
    pub worker_level: usize,
    /// Replication level for the manager.  The paper does not replicate the
    /// manager ("the manager, which represents the sensor itself, was not
    /// replicated"), so this defaults to 1.
    pub manager_level: usize,
}

impl ReplicationPolicy {
    /// No resiliency: every thread is a singleton.
    pub fn none() -> Self {
        Self {
            worker_level: 1,
            manager_level: 1,
        }
    }

    /// The paper's evaluated configuration: workers replicated to `level`,
    /// manager not replicated.
    pub fn workers_at(level: usize) -> Self {
        Self {
            worker_level: level.max(1),
            manager_level: 1,
        }
    }

    /// The Figure 4 configuration (level 2).
    pub fn paper_level_2() -> Self {
        Self::workers_at(2)
    }

    /// Whether any replication is requested at all.
    pub fn is_resilient(&self) -> bool {
        self.worker_level > 1 || self.manager_level > 1
    }

    /// Total number of physical worker threads for `workers` logical workers.
    pub fn physical_workers(&self, workers: usize) -> usize {
        workers * self.worker_level
    }
}

impl Default for ReplicationPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// Where to place group members and regenerated replacements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Members of a group are spread round-robin over the node list, skipping
    /// nodes that already host a member of the same group when possible.
    #[default]
    SpreadAcrossNodes,
    /// Members are packed onto the lowest-numbered live nodes (useful for
    /// studying worst-case contention).
    Pack,
}

impl PlacementPolicy {
    /// Chooses a node (index into `live_nodes`, which lists currently usable
    /// node identifiers) for a new member of a group whose existing members
    /// occupy `occupied_nodes`.  Returns `None` when no node is available.
    pub fn choose(
        &self,
        live_nodes: &[usize],
        occupied_nodes: &[usize],
        member_index: usize,
    ) -> Option<usize> {
        if live_nodes.is_empty() {
            return None;
        }
        match self {
            PlacementPolicy::Pack => Some(live_nodes[member_index % live_nodes.len()]),
            PlacementPolicy::SpreadAcrossNodes => {
                // Prefer a live node not already hosting a member of this
                // group; fall back to round-robin when all are occupied.
                let free: Vec<usize> = live_nodes
                    .iter()
                    .copied()
                    .filter(|n| !occupied_nodes.contains(n))
                    .collect();
                if free.is_empty() {
                    Some(live_nodes[member_index % live_nodes.len()])
                } else {
                    Some(free[member_index % free.len()])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_is_not_resilient() {
        let p = ReplicationPolicy::none();
        assert!(!p.is_resilient());
        assert_eq!(p.physical_workers(8), 8);
    }

    #[test]
    fn paper_level_two_doubles_workers_only() {
        let p = ReplicationPolicy::paper_level_2();
        assert!(p.is_resilient());
        assert_eq!(p.worker_level, 2);
        assert_eq!(p.manager_level, 1);
        assert_eq!(p.physical_workers(8), 16);
    }

    #[test]
    fn workers_at_clamps_to_at_least_one() {
        assert_eq!(ReplicationPolicy::workers_at(0).worker_level, 1);
    }

    #[test]
    fn spread_prefers_unoccupied_nodes() {
        let policy = PlacementPolicy::SpreadAcrossNodes;
        let live = vec![0, 1, 2, 3];
        let chosen = policy.choose(&live, &[0], 0).unwrap();
        assert_ne!(chosen, 0);
    }

    #[test]
    fn spread_falls_back_when_all_occupied() {
        let policy = PlacementPolicy::SpreadAcrossNodes;
        let live = vec![0, 1];
        assert!(policy.choose(&live, &[0, 1], 3).is_some());
    }

    #[test]
    fn pack_uses_round_robin() {
        let policy = PlacementPolicy::Pack;
        let live = vec![5, 6, 7];
        assert_eq!(policy.choose(&live, &[], 0), Some(5));
        assert_eq!(policy.choose(&live, &[], 1), Some(6));
        assert_eq!(policy.choose(&live, &[], 3), Some(5));
    }

    #[test]
    fn no_live_nodes_means_no_placement() {
        assert_eq!(PlacementPolicy::SpreadAcrossNodes.choose(&[], &[], 0), None);
        assert_eq!(PlacementPolicy::Pack.choose(&[], &[], 0), None);
    }
}
