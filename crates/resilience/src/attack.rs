//! Attack emulation for live worker threads.
//!
//! The paper's threat model is an adversary who kills or subverts processes
//! ("information warfare attacks").  For examples and tests we need a way to
//! take out a running worker thread on demand; a [`KillSwitch`] is a shared
//! flag the worker polls at its reactive points (message receipt, between
//! compute phases).  When tripped, the worker stops participating — exactly
//! what a killed process looks like to the rest of the system — and the
//! failure detector / regeneration protocol takes over.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared flag that marks a thread as killed.
#[derive(Debug, Clone, Default)]
pub struct KillSwitch {
    killed: Arc<AtomicBool>,
}

impl KillSwitch {
    /// Creates an armed (not yet tripped) kill switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the switch: the owning thread should stop at its next check.
    pub fn kill(&self) {
        self.killed.store(true, Ordering::Release);
    }

    /// Whether the switch has been tripped.
    pub fn is_killed(&self) -> bool {
        self.killed.load(Ordering::Acquire)
    }
}

/// A registry of kill switches keyed by member routing name, used by the
/// attack-drill example and the resilience integration tests to stage
/// attacks against specific workers.
#[derive(Debug, Default, Clone)]
pub struct AttackInjector {
    switches: Arc<RwLock<BTreeMap<String, KillSwitch>>>,
    kills: Arc<RwLock<Vec<String>>>,
}

impl AttackInjector {
    /// Creates an injector with no registered targets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a target and returns the kill switch its thread should poll.
    pub fn register(&self, name: impl Into<String>) -> KillSwitch {
        let name = name.into();
        let switch = KillSwitch::new();
        self.switches.write().insert(name, switch.clone());
        switch
    }

    /// Attacks a target by routing name; returns `true` if the target was
    /// registered.
    pub fn attack(&self, name: &str) -> bool {
        let switches = self.switches.read();
        if let Some(s) = switches.get(name) {
            s.kill();
            self.kills.write().push(name.to_string());
            true
        } else {
            false
        }
    }

    /// Names of all registered targets, sorted.
    pub fn targets(&self) -> Vec<String> {
        self.switches.read().keys().cloned().collect()
    }

    /// The attacks launched so far, in order.
    pub fn attack_log(&self) -> Vec<String> {
        self.kills.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_starts_unarmed_and_trips_once() {
        let switch = KillSwitch::new();
        assert!(!switch.is_killed());
        switch.kill();
        assert!(switch.is_killed());
        switch.kill();
        assert!(switch.is_killed());
    }

    #[test]
    fn clones_share_state() {
        let switch = KillSwitch::new();
        let observer = switch.clone();
        switch.kill();
        assert!(observer.is_killed());
    }

    #[test]
    fn injector_attacks_registered_targets_only() {
        let injector = AttackInjector::new();
        let switch = injector.register("worker0#0");
        assert!(!injector.attack("ghost"));
        assert!(!switch.is_killed());
        assert!(injector.attack("worker0#0"));
        assert!(switch.is_killed());
        assert_eq!(injector.attack_log(), vec!["worker0#0".to_string()]);
    }

    #[test]
    fn kill_switch_is_visible_across_threads() {
        let injector = AttackInjector::new();
        let switch = injector.register("w#0");
        let handle = std::thread::spawn(move || {
            // Poll until killed.
            let mut spins = 0u64;
            while !switch.is_killed() {
                std::thread::yield_now();
                spins += 1;
                if spins > 50_000_000 {
                    panic!("kill signal never observed");
                }
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        injector.attack("w#0");
        assert!(handle.join().unwrap());
    }

    #[test]
    fn targets_listing_is_sorted() {
        let injector = AttackInjector::new();
        injector.register("b");
        injector.register("a");
        assert_eq!(injector.targets(), vec!["a".to_string(), "b".to_string()]);
    }
}
