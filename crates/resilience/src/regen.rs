//! The regeneration protocol.
//!
//! Replication alone degrades gracefully "to the point of failure"; the
//! resiliency protocols instead *recreate* the lost replica so operational
//! readiness is restored, "subject only to the constraints imposed by the
//! total available resources".  The [`Regenerator`] implements that control
//! loop for the thread level:
//!
//! 1. a failure report arrives (from the failure detector or from a send
//!    error),
//! 2. the failed member is removed from its group's membership,
//! 3. a placement is chosen for the replacement on a live node with
//!    resources (placement policy),
//! 4. an application-supplied factory actually spawns the replacement thread
//!    (registering or rebinding its routing name), and
//! 5. membership is updated so group sends include the new member.
//!
//! The factory indirection keeps the library application independent, as the
//! paper requires: the fusion code provides a closure that knows how to
//! restart a PCT worker from the group's state, while the protocol logic
//! lives here.

use crate::group::{MemberId, MembershipTable};
use crate::policy::PlacementPolicy;
use crate::{ResilienceError, Result};
use serde::{Deserialize, Serialize};

/// A record of one regeneration performed by the protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegenerationEvent {
    /// The member that failed.
    pub failed: MemberId,
    /// The replacement member that was created.
    pub replacement: MemberId,
    /// The node the replacement was placed on.
    pub node: usize,
}

/// The regeneration protocol driver.
pub struct Regenerator {
    membership: MembershipTable,
    placement: PlacementPolicy,
    live_nodes: Vec<usize>,
    history: Vec<RegenerationEvent>,
    telemetry: telemetry::Telemetry,
}

impl Regenerator {
    /// Creates a regenerator over the given membership table.
    pub fn new(
        membership: MembershipTable,
        placement: PlacementPolicy,
        live_nodes: Vec<usize>,
    ) -> Self {
        Self {
            membership,
            placement,
            live_nodes,
            history: Vec::new(),
            telemetry: telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: every regeneration is recorded as a
    /// `member_regenerated` instant and counted in
    /// `resilience_regenerations_total`.
    pub fn with_telemetry(mut self, telemetry: telemetry::Telemetry) -> Self {
        self.set_telemetry(telemetry);
        self
    }

    /// In-place variant of [`Regenerator::with_telemetry`].
    pub fn set_telemetry(&mut self, telemetry: telemetry::Telemetry) {
        self.telemetry = telemetry;
    }

    /// Marks a node as unusable (it was attacked or failed); members cannot
    /// be placed there any more.
    pub fn mark_node_down(&mut self, node: usize) {
        self.live_nodes.retain(|&n| n != node);
    }

    /// Marks a node as usable again.
    pub fn mark_node_up(&mut self, node: usize) {
        if !self.live_nodes.contains(&node) {
            self.live_nodes.push(node);
            self.live_nodes.sort_unstable();
        }
    }

    /// Currently usable nodes.
    pub fn live_nodes(&self) -> &[usize] {
        &self.live_nodes
    }

    /// All regenerations performed so far.
    pub fn history(&self) -> &[RegenerationEvent] {
        &self.history
    }

    /// Handles the failure of `member`: restores its group to the target
    /// replication level by creating one replacement, spawned via `factory`.
    ///
    /// `factory` receives the replacement's [`MemberId`] and chosen node and
    /// must start the new thread (typically via `scp::Runtime::spawn` or
    /// `regenerate_context`).  If the factory fails, membership is left
    /// without the replacement so a later retry can run.
    ///
    /// Returns `Ok(None)` when the member was not present (already handled —
    /// e.g. both the detector and a send error reported the same failure).
    pub fn handle_failure<F>(
        &mut self,
        member: &MemberId,
        mut factory: F,
    ) -> Result<Option<RegenerationEvent>>
    where
        F: FnMut(&MemberId, usize) -> Result<()>,
    {
        let group_name = member.group.clone();
        // Step 2: remove the failed member.
        let removed = self
            .membership
            .update(&group_name, |g| g.remove_member(member))?;
        if !removed {
            return Ok(None);
        }
        // Step 3: choose a placement for the replacement.
        let snapshot = self.membership.get(&group_name)?;
        let node = self
            .placement
            .choose(
                &self.live_nodes,
                &snapshot.occupied_nodes(),
                snapshot.next_incarnation,
            )
            .ok_or_else(|| ResilienceError::GroupExhausted(group_name.clone()))?;
        // Step 4/5: reserve the membership slot, then spawn.
        let replacement = self
            .membership
            .update(&group_name, |g| g.add_member(node))?;
        if let Err(e) = factory(&replacement, node) {
            // Roll back so the group does not list a member that never started.
            self.membership
                .update(&group_name, |g| g.remove_member(&replacement))?;
            return Err(e);
        }
        let event = RegenerationEvent {
            failed: member.clone(),
            replacement,
            node,
        };
        self.telemetry.instant(
            "member_regenerated",
            None,
            None,
            &format!(
                "{} -> {}",
                event.failed.routing_name(),
                event.replacement.routing_name()
            ),
        );
        self.telemetry.count("resilience_regenerations_total", &[]);
        self.history.push(event.clone());
        Ok(Some(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::ReplicaGroup;

    fn setup() -> (MembershipTable, Regenerator) {
        let table = MembershipTable::new();
        table.insert(ReplicaGroup::new("w0", 2, &[0, 1]).unwrap());
        table.insert(ReplicaGroup::new("w1", 2, &[2, 3]).unwrap());
        let regen = Regenerator::new(
            table.clone(),
            PlacementPolicy::SpreadAcrossNodes,
            vec![0, 1, 2, 3, 4, 5],
        );
        (table, regen)
    }

    #[test]
    fn failure_triggers_regeneration_on_a_fresh_node() {
        let (table, mut regen) = setup();
        let failed = MemberId::new("w0", 1);
        let mut spawned = Vec::new();
        let event = regen
            .handle_failure(&failed, |m, node| {
                spawned.push((m.clone(), node));
                Ok(())
            })
            .unwrap()
            .expect("regeneration happened");
        assert_eq!(event.failed, failed);
        assert_eq!(event.replacement.incarnation, 2);
        assert_eq!(spawned.len(), 1);
        // The group is back at full strength.
        let group = table.get("w0").unwrap();
        assert_eq!(group.members.len(), 2);
        assert!(!group.is_degraded());
        // The replacement does not share a node with the survivor (node 0).
        assert_ne!(event.node, 0);
        assert_eq!(regen.history().len(), 1);
    }

    #[test]
    fn duplicate_failure_reports_are_idempotent() {
        let (_, mut regen) = setup();
        let failed = MemberId::new("w0", 1);
        regen.handle_failure(&failed, |_, _| Ok(())).unwrap();
        let second = regen
            .handle_failure(&failed, |_, _| panic!("must not spawn twice"))
            .unwrap();
        assert!(second.is_none());
    }

    #[test]
    fn factory_failure_rolls_back_membership() {
        let (table, mut regen) = setup();
        let failed = MemberId::new("w1", 0);
        let result = regen.handle_failure(&failed, |_, _| {
            Err(ResilienceError::InvalidConfig("no resources".into()))
        });
        assert!(result.is_err());
        let group = table.get("w1").unwrap();
        // The failed member is gone and no phantom replacement was recorded.
        assert_eq!(group.members.len(), 1);
        assert!(group.is_degraded());
        assert!(regen.history().is_empty());
    }

    #[test]
    fn unknown_group_failure_is_an_error() {
        let (_, mut regen) = setup();
        let bogus = MemberId::new("ghost", 0);
        assert!(matches!(
            regen.handle_failure(&bogus, |_, _| Ok(())),
            Err(ResilienceError::UnknownGroup(_))
        ));
    }

    #[test]
    fn exhausted_node_pool_reports_group_exhausted() {
        let table = MembershipTable::new();
        table.insert(ReplicaGroup::new("w0", 2, &[0]).unwrap());
        let mut regen = Regenerator::new(table, PlacementPolicy::SpreadAcrossNodes, vec![0]);
        regen.mark_node_down(0);
        let failed = MemberId::new("w0", 0);
        assert!(matches!(
            regen.handle_failure(&failed, |_, _| Ok(())),
            Err(ResilienceError::GroupExhausted(_))
        ));
    }

    #[test]
    fn node_marking_updates_the_live_set() {
        let (_, mut regen) = setup();
        regen.mark_node_down(3);
        assert!(!regen.live_nodes().contains(&3));
        regen.mark_node_up(3);
        regen.mark_node_up(3);
        assert_eq!(regen.live_nodes().iter().filter(|&&n| n == 3).count(), 1);
    }

    #[test]
    fn successive_failures_keep_restoring_the_level() {
        // Repeatedly kill the newest member; the group must always come back
        // to level 2 as long as nodes remain.
        let (table, mut regen) = setup();
        let mut victim = MemberId::new("w0", 0);
        for round in 0..4 {
            let event = regen
                .handle_failure(&victim, |_, _| Ok(()))
                .unwrap()
                .expect("regenerated");
            assert_eq!(event.replacement.incarnation, 2 + round);
            let group = table.get("w0").unwrap();
            assert_eq!(group.members.len(), 2);
            victim = event.replacement;
        }
        assert_eq!(regen.history().len(), 4);
    }
}
