//! Analytic accounting of resiliency overheads.
//!
//! The paper's headline performance claim is that resiliency costs "the cost
//! of replication plus approximately 10 %" — the 10 % being the more complex
//! communication protocols (group sends, acknowledgements, sequence
//! bookkeeping, heartbeats).  The simulator-driven reproduction needs those
//! costs as explicit model parameters so Figure 4 can be regenerated and so
//! the decomposition (replication versus protocol) can be reported
//! separately, which is what [`OverheadModel`] provides.

use serde::{Deserialize, Serialize};

/// Parameters describing the cost of running a workload under the resiliency
/// protocols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Replication level of the worker groups.
    pub replication_level: usize,
    /// Fractional CPU/protocol overhead added to every message-handling and
    /// compute step by the group-communication protocols (sequence numbers,
    /// duplicate suppression, acknowledgements).  The paper measures this at
    /// roughly 0.10.
    pub protocol_overhead: f64,
    /// Heartbeat period in milliseconds (heartbeats consume a little network
    /// bandwidth and manager attention).
    pub heartbeat_period_ms: u64,
    /// Size of one heartbeat/acknowledgement control message in bytes.
    pub control_message_bytes: u64,
}

impl OverheadModel {
    /// No resiliency at all.
    pub fn none() -> Self {
        Self {
            replication_level: 1,
            protocol_overhead: 0.0,
            heartbeat_period_ms: 0,
            control_message_bytes: 0,
        }
    }

    /// The configuration evaluated in Figure 4: level-2 replication with the
    /// ~10 % protocol overhead the paper reports.
    pub fn paper_level_2() -> Self {
        Self::with_level(2)
    }

    /// A model with an arbitrary replication level and paper-calibrated
    /// protocol costs, used by the replication-level ablation bench.
    pub fn with_level(level: usize) -> Self {
        let level = level.max(1);
        if level == 1 {
            return Self::none();
        }
        Self {
            replication_level: level,
            protocol_overhead: 0.10,
            heartbeat_period_ms: 250,
            control_message_bytes: 64,
        }
    }

    /// Whether the model represents a resilient configuration.
    pub fn is_resilient(&self) -> bool {
        self.replication_level > 1
    }

    /// How many copies of every worker-bound payload message the manager
    /// sends (one per replica).
    pub fn payload_copies(&self) -> usize {
        self.replication_level
    }

    /// Multiplier applied to worker compute time purely due to protocol
    /// processing (not replication — replication costs emerge from the
    /// duplicated work itself).
    pub fn compute_multiplier(&self) -> f64 {
        1.0 + self.protocol_overhead
    }

    /// Number of extra control messages (acknowledgements) exchanged per
    /// payload message under the group protocols: one ack per replica copy.
    pub fn acks_per_payload(&self) -> usize {
        if self.is_resilient() {
            self.replication_level
        } else {
            0
        }
    }

    /// Heartbeat messages per second emitted by `members` monitored members.
    pub fn heartbeats_per_second(&self, members: usize) -> f64 {
        if self.heartbeat_period_ms == 0 {
            return 0.0;
        }
        members as f64 * 1000.0 / self.heartbeat_period_ms as f64
    }

    /// The idealised slowdown the paper *expected* from replication alone
    /// ("performance would decrease by a factor of two"): with the worker
    /// pool fixed, running `level` copies of every worker multiplies the
    /// parallel compute by `level`.
    pub fn expected_replication_slowdown(&self) -> f64 {
        self.replication_level as f64
    }

    /// The total slowdown predicted by the model: replication times protocol
    /// overhead.  Figure 4's measured resilient curve should sit close to
    /// the non-resilient curve multiplied by this factor.
    pub fn predicted_slowdown(&self) -> f64 {
        self.expected_replication_slowdown() * self.compute_multiplier()
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_costs_nothing() {
        let m = OverheadModel::none();
        assert!(!m.is_resilient());
        assert_eq!(m.payload_copies(), 1);
        assert_eq!(m.compute_multiplier(), 1.0);
        assert_eq!(m.acks_per_payload(), 0);
        assert_eq!(m.heartbeats_per_second(8), 0.0);
        assert_eq!(m.predicted_slowdown(), 1.0);
    }

    #[test]
    fn paper_level_2_matches_reported_overheads() {
        let m = OverheadModel::paper_level_2();
        assert!(m.is_resilient());
        assert_eq!(m.payload_copies(), 2);
        assert!((m.compute_multiplier() - 1.10).abs() < 1e-12);
        assert_eq!(m.expected_replication_slowdown(), 2.0);
        assert!((m.predicted_slowdown() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn with_level_one_degenerates_to_none() {
        assert_eq!(OverheadModel::with_level(1), OverheadModel::none());
        assert_eq!(OverheadModel::with_level(0), OverheadModel::none());
    }

    #[test]
    fn heartbeat_rate_scales_with_members() {
        let m = OverheadModel::paper_level_2();
        assert!((m.heartbeats_per_second(4) - 16.0).abs() < 1e-12);
        assert!((m.heartbeats_per_second(8) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn higher_levels_predict_proportionally_larger_slowdowns() {
        let l2 = OverheadModel::with_level(2).predicted_slowdown();
        let l3 = OverheadModel::with_level(3).predicted_slowdown();
        assert!(l3 > l2);
        assert!((l3 / l2 - 1.5).abs() < 1e-12);
    }
}
