//! Property tests for the zero-copy message plane: for arbitrary cube
//! dimensions and partition counts, every [`CubeView`] window must read
//! byte-identical (`f64` bit patterns, not approximate equality) to the
//! owned copy the old `SubCubeSpec::extract` path produced — including edge
//! partitions (more sub-cubes than rows), single-pixel windows and strided
//! band windows.

use hsi::partition::{partition_rows, partition_views};
use hsi::{CubeDims, CubeView, HyperCube};
use proptest::prelude::*;
use std::sync::Arc;

/// A deterministic cube whose every sample is a distinct, seed-dependent
/// value, so byte-identity failures cannot hide behind repeated samples.
fn coded_cube(dims: CubeDims, salt: f64) -> Arc<HyperCube> {
    let samples: Vec<f64> = (0..dims.samples())
        .map(|i| salt + (i as f64) * 0.372_912_4 + (i as f64).sin() * 1e-3)
        .collect();
    Arc::new(HyperCube::from_samples(dims, samples).expect("length matches"))
}

/// Bit-exact comparison of two pixel-slice iterators.
fn assert_bits_eq<'a>(
    a: impl Iterator<Item = &'a [f64]>,
    b: impl Iterator<Item = &'a [f64]>,
) -> bool {
    let a: Vec<&[f64]> = a.collect();
    let b: Vec<&[f64]> = b.collect();
    a.len() == b.len()
        && a.iter().zip(&b).all(|(pa, pb)| {
            pa.len() == pb.len()
                && pa
                    .iter()
                    .zip(pb.iter())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: for any dims and any partition count (often
    /// exceeding the row count, so the edge partitions and the cap kick
    /// in), every partition view reads byte-identical to the owned
    /// extracted sub-cube.
    #[test]
    fn partition_views_read_byte_identical_to_extract(
        w in 1usize..14,
        h in 1usize..22,
        b in 1usize..7,
        parts in 1usize..40,
        salt in -500.0..500.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let specs = partition_rows(dims, parts).unwrap();
        let views = partition_views(&cube, parts).unwrap();
        prop_assert_eq!(specs.len(), views.len());
        let mut covered_rows = 0;
        for (spec, view) in specs.iter().zip(&views) {
            let owned = spec.extract(&cube).unwrap();
            prop_assert_eq!(view.row_start(), spec.row_start);
            prop_assert_eq!(view.dims(), owned.data.dims());
            prop_assert_eq!(view.payload_bytes(), spec.payload_bytes());
            prop_assert!(assert_bits_eq(view.iter_pixels(), owned.data.iter_pixels()));
            // Materializing the view reproduces the owned copy exactly.
            prop_assert_eq!(&view.materialize(), &owned.data);
            // Random-access pixel reads agree too.
            let (px, py) = (spec.width / 2, spec.rows / 2);
            prop_assert_eq!(view.pixel(px, py).unwrap(), owned.data.pixel(px, py).unwrap());
            covered_rows += spec.rows;
        }
        prop_assert_eq!(covered_rows, h);
    }

    /// Single-pixel windows: the smallest possible view still reads the
    /// exact backing samples.
    #[test]
    fn single_pixel_windows_are_byte_identical(
        w in 1usize..12,
        h in 1usize..12,
        b in 1usize..9,
        xs in 0usize..144,
        ys in 0usize..144,
        salt in -500.0..500.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let (x, y) = (xs % w, ys % h);
        let view = CubeView::window(Arc::clone(&cube), x, y, 1, 1).unwrap();
        prop_assert_eq!(view.pixels(), 1);
        let direct = cube.pixel(x, y).unwrap();
        let through_view = view.pixel(0, 0).unwrap();
        prop_assert!(through_view
            .iter()
            .zip(direct.iter())
            .all(|(a, c)| a.to_bits() == c.to_bits()));
        prop_assert_eq!(&view.materialize(), &cube.window(x, y, 1, 1).unwrap());
    }

    /// Arbitrary spatial windows with arbitrary band sub-windows: strided
    /// row *and* band access still reads the exact backing samples.
    #[test]
    fn strided_band_windows_are_byte_identical(
        w in 1usize..12,
        h in 1usize..12,
        b in 1usize..9,
        x0s in 0usize..144,
        y0s in 0usize..144,
        b0s in 0usize..9,
        salt in -500.0..500.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let (x0, y0) = (x0s % w, y0s % h);
        let (ww, wh) = (w - x0, h - y0);
        let band0 = b0s % b;
        let bands = b - band0;
        let view = CubeView::window(Arc::clone(&cube), x0, y0, ww, wh)
            .unwrap()
            .with_band_window(band0, bands)
            .unwrap();
        prop_assert_eq!(view.bands(), bands);
        for dy in 0..wh {
            for dx in 0..ww {
                let full = cube.pixel(x0 + dx, y0 + dy).unwrap();
                let expect = &full[band0..band0 + bands];
                let got = view.pixel(dx, dy).unwrap();
                prop_assert!(got
                    .iter()
                    .zip(expect.iter())
                    .all(|(a, c)| a.to_bits() == c.to_bits()));
            }
        }
        // The materialized window equals manual extraction + band slicing.
        let owned = view.materialize();
        prop_assert_eq!(owned.dims(), CubeDims::new(ww, wh, bands));
        let reference = cube.window(x0, y0, ww, wh).unwrap();
        for dy in 0..wh {
            for dx in 0..ww {
                prop_assert_eq!(
                    owned.pixel(dx, dy).unwrap(),
                    &reference.pixel(dx, dy).unwrap()[band0..band0 + bands]
                );
            }
        }
    }

    /// The old extract path always charges the clone ledger with the full
    /// payload volume — the "before" number that makes the view plane's
    /// measured `bytes_cloned = 0` meaningful.  (Exact-zero assertions for
    /// view clones live in single-charger test binaries: `pct`'s message
    /// and pipeline tests.)
    #[test]
    fn extract_charges_the_clone_ledger_with_payload_bytes(
        w in 1usize..10,
        h in 2usize..16,
        b in 1usize..6,
        parts in 1usize..16,
        salt in -500.0..500.0f64,
    ) {
        let dims = CubeDims::new(w, h, b);
        let cube = coded_cube(dims, salt);
        let specs = partition_rows(dims, parts).unwrap();
        let expected: usize = specs.iter().map(|s| s.payload_bytes()).sum();
        let ledger = hsi::CloneLedger::snapshot();
        for spec in &specs {
            spec.extract(&cube).unwrap();
        }
        // At least the payload volume was charged (concurrent tests may
        // charge the shared ledger on top).
        prop_assert!(ledger.delta() >= expected as u64);
        prop_assert_eq!(expected, dims.samples() * 8);
    }
}
