//! Hyper-spectral imagery substrate for the Resilient Image Fusion
//! reproduction.
//!
//! The paper fuses a 210-band HYDICE cube (an airborne imaging spectrometer,
//! 400 nm – 2.5 µm, foliated scenes containing camouflaged mechanized
//! vehicles) of spatial size 320×320.  Because the HYDICE collection is not
//! redistributable, this crate provides:
//!
//! * [`HyperCube`] — the in-memory cube representation (band-interleaved by
//!   pixel) with pixel-vector access, band planes and sub-cube extraction.
//! * [`synthetic`] — a deterministic synthetic scene generator that builds a
//!   HYDICE-like cube from material spectral signatures (forest, grass,
//!   soil, road, water, vehicle paint, camouflage net), spatial layout and
//!   per-band sensor noise.  The generated cube has the same statistical
//!   structure the fusion pipeline cares about: strongly correlated bands, a
//!   handful of dominant background materials and rare, spectrally distinct
//!   targets.
//! * [`partition`] — manager-side decomposition of a cube into sub-cubes
//!   (the unit of work handed to workers) with the granularity control
//!   studied in Figure 5.
//! * [`view`] — zero-copy `Arc`-backed [`CubeView`] windows over a shared
//!   cube: what the message plane ships instead of owned sub-cube copies,
//!   plus the process-wide clone ledger that proves it (`bytes_cloned`).
//! * [`io`] — PGM/PPM writers for single bands and fused colour composites,
//!   plus a simple binary cube format for persisting synthetic scenes.
//! * [`stats`] — per-band statistics and image-quality metrics (contrast,
//!   entropy) used by the tests and the screening ablation bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cube;
pub mod io;
pub mod partition;
pub mod rgb;
pub mod stats;
pub mod synthetic;
pub mod view;

pub use cube::{CubeDims, HyperCube};
pub use io::{CubeFileHeader, Interleave};
pub use partition::{GranularityPolicy, SubCube, SubCubeSpec};
pub use rgb::RgbImage;
pub use synthetic::{Material, SceneConfig, SceneGenerator};
pub use view::{
    assembled_bytes_total, charge_assembled_bytes, cloned_bytes_total, thread_cloned_bytes_total,
    CloneLedger, CubeView,
};

/// Errors produced by the hyper-spectral imagery substrate.
#[derive(Debug)]
pub enum HsiError {
    /// Requested coordinates or dimensions fall outside the cube.
    OutOfBounds {
        /// What was being accessed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// The exclusive bound.
        bound: usize,
    },
    /// The provided buffer length does not match the cube dimensions.
    ShapeMismatch {
        /// Expected number of samples.
        expected: usize,
        /// Actual number of samples.
        actual: usize,
    },
    /// A configuration value was invalid (zero dimension, empty material set…).
    InvalidConfig(String),
    /// An I/O error from reading or writing image files.
    Io(std::io::Error),
}

impl std::fmt::Display for HsiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HsiError::OutOfBounds { what, index, bound } => {
                write!(f, "{what} index {index} out of bounds (max {bound})")
            }
            HsiError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: expected {expected} samples, got {actual}"
                )
            }
            HsiError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HsiError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HsiError {}

impl From<std::io::Error> for HsiError {
    fn from(e: std::io::Error) -> Self {
        HsiError::Io(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HsiError>;
