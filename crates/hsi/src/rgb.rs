//! RGB colour-composite images — the output of the fusion pipeline.

use crate::{HsiError, Result};
use serde::{Deserialize, Serialize};

/// An 8-bit-per-channel RGB image in row-major order.
///
/// This is the final product of the fusion pipeline (the Figure 3
/// colour-composite): the first three principal components mapped through the
/// human-centred colour matrix and quantised to `[0, 255]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RgbImage {
    width: usize,
    height: usize,
    /// Interleaved RGB bytes, `3 * width * height` long.
    data: Vec<u8>,
}

impl RgbImage {
    /// Creates a black image.
    pub fn black(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0; width * height * 3],
        }
    }

    /// Creates an image from interleaved RGB bytes.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self> {
        if data.len() != width * height * 3 {
            return Err(HsiError::ShapeMismatch {
                expected: width * height * 3,
                actual: data.len(),
            });
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Interleaved RGB bytes.
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// Reads the pixel at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> Result<[u8; 3]> {
        if x >= self.width {
            return Err(HsiError::OutOfBounds {
                what: "x",
                index: x,
                bound: self.width,
            });
        }
        if y >= self.height {
            return Err(HsiError::OutOfBounds {
                what: "y",
                index: y,
                bound: self.height,
            });
        }
        let off = (y * self.width + x) * 3;
        Ok([self.data[off], self.data[off + 1], self.data[off + 2]])
    }

    /// Writes the pixel at `(x, y)`.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) -> Result<()> {
        if x >= self.width {
            return Err(HsiError::OutOfBounds {
                what: "x",
                index: x,
                bound: self.width,
            });
        }
        if y >= self.height {
            return Err(HsiError::OutOfBounds {
                what: "y",
                index: y,
                bound: self.height,
            });
        }
        let off = (y * self.width + x) * 3;
        self.data[off..off + 3].copy_from_slice(&rgb);
        Ok(())
    }

    /// Mean luma (Rec. 601 weights) of the image, used by tests to reason
    /// about overall brightness of fused composites.
    pub fn mean_luma(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        for px in self.data.chunks_exact(3) {
            acc += 0.299 * px[0] as f64 + 0.587 * px[1] as f64 + 0.114 * px[2] as f64;
        }
        acc / (self.width * self.height) as f64
    }

    /// Root-mean-square contrast of the luma channel — the paper argues the
    /// fused composite shows "significantly improved contrast levels", and
    /// the integration tests quantify that with this metric.
    pub fn rms_contrast(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let lumas: Vec<f64> = self
            .data
            .chunks_exact(3)
            .map(|px| 0.299 * px[0] as f64 + 0.587 * px[1] as f64 + 0.114 * px[2] as f64)
            .collect();
        let mean = lumas.iter().sum::<f64>() / lumas.len() as f64;
        (lumas.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / lumas.len() as f64).sqrt()
    }

    /// Mean absolute per-channel difference to another image of the same
    /// size; used to compare sequential and distributed fusion outputs.
    pub fn mean_abs_diff(&self, other: &RgbImage) -> Result<f64> {
        if self.width != other.width || self.height != other.height {
            return Err(HsiError::ShapeMismatch {
                expected: self.data.len(),
                actual: other.data.len(),
            });
        }
        if self.data.is_empty() {
            return Ok(0.0);
        }
        let total: f64 = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a as f64 - b as f64).abs())
            .sum();
        Ok(total / self.data.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_image_has_zero_luma_and_contrast() {
        let img = RgbImage::black(4, 4);
        assert_eq!(img.mean_luma(), 0.0);
        assert_eq!(img.rms_contrast(), 0.0);
    }

    #[test]
    fn from_raw_validates_length() {
        assert!(RgbImage::from_raw(2, 2, vec![0; 11]).is_err());
        assert!(RgbImage::from_raw(2, 2, vec![0; 12]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = RgbImage::black(3, 2);
        img.set(2, 1, [10, 20, 30]).unwrap();
        assert_eq!(img.get(2, 1).unwrap(), [10, 20, 30]);
        assert_eq!(img.get(0, 0).unwrap(), [0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_access_errors() {
        let mut img = RgbImage::black(3, 2);
        assert!(img.get(3, 0).is_err());
        assert!(img.get(0, 2).is_err());
        assert!(img.set(5, 5, [0, 0, 0]).is_err());
    }

    #[test]
    fn checkerboard_has_positive_contrast() {
        let mut img = RgbImage::black(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                if (x + y) % 2 == 0 {
                    img.set(x, y, [255, 255, 255]).unwrap();
                }
            }
        }
        assert!(img.rms_contrast() > 100.0);
        assert!((img.mean_luma() - 127.5).abs() < 1.0);
    }

    #[test]
    fn mean_abs_diff_of_identical_images_is_zero() {
        let img = RgbImage::black(5, 5);
        assert_eq!(img.mean_abs_diff(&img.clone()).unwrap(), 0.0);
    }

    #[test]
    fn mean_abs_diff_detects_differences() {
        let a = RgbImage::black(2, 2);
        let b = RgbImage::from_raw(2, 2, vec![10; 12]).unwrap();
        assert_eq!(a.mean_abs_diff(&b).unwrap(), 10.0);
        let c = RgbImage::black(3, 2);
        assert!(a.mean_abs_diff(&c).is_err());
    }
}
