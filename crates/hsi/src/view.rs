//! Zero-copy, `Arc`-backed views into a [`HyperCube`].
//!
//! The distributed protocols ship every sub-cube to workers twice per run
//! (screening and transform phases).  Shipping an owned [`crate::SubCube`]
//! deep-copies the payload for every task; a [`CubeView`] instead shares the
//! full cube behind an `Arc` and carries only a window spec, so cloning a
//! view — and therefore cloning any task message built from one — moves a
//! reference count, not pixels.
//!
//! A view selects a spatial window `[x0, x0+width) × [y0, y0+height)` and a
//! band window `[band0, band0+bands)`.  Rows of the window are strided
//! through the backing cube's BIP layout (`storage_width × storage_bands`
//! samples apart), and the band window makes per-pixel access strided too,
//! so a view can describe anything from the full cube down to a single
//! sample run without touching the data.
//!
//! The module also keeps the process-wide **clone ledger**: every deep copy
//! of sub-cube payload bytes — [`CubeView::materialize`] and
//! [`crate::SubCubeSpec::extract`] — is charged to it.  Pipelines and the
//! service layer read deltas of this ledger to report `bytes_cloned`, which
//! is how the zero-copy claim is measured rather than asserted.

use crate::cube::{CubeDims, HyperCube};
use crate::{HsiError, Result};
use linalg::Vector;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of sub-cube payload bytes that were deep-copied.
static CLONE_LEDGER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread mirror of [`CLONE_LEDGER`].  Serialization boundaries
    /// (the `wire` codec) assert "encode copied payload only via
    /// [`CubeView::materialize`]" by comparing a before/after delta of this
    /// counter against the encoded views' payload bytes; the thread-local
    /// mirror makes that exact equality race-free even while other threads
    /// materialize concurrently.
    static THREAD_CLONE_LEDGER: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Process-wide count of payload bytes streamed *directly into* shared cube
/// storage by an ingestion path (decoded in place, never copied again).
static ASSEMBLY_LEDGER: AtomicU64 = AtomicU64::new(0);

/// Charges `bytes` of deep-copied sub-cube payload to the clone ledger.
pub(crate) fn charge_cloned_bytes(bytes: usize) {
    CLONE_LEDGER.fetch_add(bytes as u64, Ordering::Relaxed);
    THREAD_CLONE_LEDGER.with(|c| c.set(c.get() + bytes as u64));
}

/// Total sub-cube payload bytes deep-copied by this process so far.
pub fn cloned_bytes_total() -> u64 {
    CLONE_LEDGER.load(Ordering::Relaxed)
}

/// Sub-cube payload bytes deep-copied *by the calling thread* so far.  The
/// wire codec's encode path snapshots this around serialization to
/// `debug_assert` that materializing the message's views is the only copy
/// it performed — see the wire-invariant note on [`CubeView`].
pub fn thread_cloned_bytes_total() -> u64 {
    THREAD_CLONE_LEDGER.with(|c| c.get())
}

/// Charges `bytes` of streamed payload that were decoded directly into
/// their final position in shared cube storage.  Ingestion decoders call
/// this once per assembled sample run; together with a zero
/// [`CloneLedger::delta`] it *measures* the claim that streaming assembly
/// involves no post-assembly copy.
pub fn charge_assembled_bytes(bytes: usize) {
    ASSEMBLY_LEDGER.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Total payload bytes assembled in place by this process so far.
pub fn assembled_bytes_total() -> u64 {
    ASSEMBLY_LEDGER.load(Ordering::Relaxed)
}

/// A snapshot of the clone and assembly ledgers; [`CloneLedger::delta`]
/// measures the payload bytes deep-copied since the snapshot was taken and
/// [`CloneLedger::assembled_delta`] the bytes streamed straight into shared
/// storage.
#[derive(Debug, Clone, Copy)]
pub struct CloneLedger {
    cloned: u64,
    assembled: u64,
}

impl CloneLedger {
    /// Snapshots the current ledger values.
    pub fn snapshot() -> Self {
        Self {
            cloned: cloned_bytes_total(),
            assembled: assembled_bytes_total(),
        }
    }

    /// Payload bytes deep-copied since this snapshot.
    pub fn delta(&self) -> u64 {
        cloned_bytes_total().saturating_sub(self.cloned)
    }

    /// Payload bytes assembled in place since this snapshot.
    pub fn assembled_delta(&self) -> u64 {
        assembled_bytes_total().saturating_sub(self.assembled)
    }
}

/// A zero-copy window into a shared [`HyperCube`].
///
/// Cloning a view is an `Arc` reference-count bump; the pixel data is never
/// duplicated until [`CubeView::materialize`] is called (which charges the
/// clone ledger).
///
/// # The wire invariant
///
/// [`CubeView::materialize`] is the **only** path by which view payload
/// leaves the shared storage.  The `wire` codec relies on this: encoding a
/// message materializes each embedded view straight into the frame body, so
/// the clone-ledger delta across an encode equals exactly the sum of the
/// encoded views' [`CubeView::payload_bytes`] — no hidden copy is possible
/// without moving the ledger.  The encode path `debug_assert`s this
/// reconciliation, turning "zero-copy except at the serialization boundary"
/// from a convention into a checked invariant.
///
/// On the decode side a view is rebuilt over its own freshly-owned shard
/// cube with [`CubeView::standalone`], which preserves the window's original
/// scene coordinates ([`CubeView::x0`] / [`CubeView::row_start`]) so workers
/// across a process boundary label results — e.g. `RgbStrip::row_start` —
/// identically to in-process workers sharing the full cube.
#[derive(Debug, Clone)]
pub struct CubeView {
    storage: Arc<HyperCube>,
    x0: usize,
    y0: usize,
    width: usize,
    height: usize,
    band0: usize,
    bands: usize,
    /// Scene coordinates the window originally described.  Equal to
    /// `(x0, y0)` for views into the full scene cube; a decoded standalone
    /// view has `x0 == y0 == 0` (its storage *is* the shard) but keeps the
    /// scene origin here so coordinate-dependent results stay identical
    /// across the wire.
    origin_x: usize,
    origin_y: usize,
}

impl CubeView {
    /// A view of the whole cube.
    pub fn full(storage: Arc<HyperCube>) -> Self {
        let dims = storage.dims();
        Self {
            storage,
            x0: 0,
            y0: 0,
            width: dims.width,
            height: dims.height,
            band0: 0,
            bands: dims.bands,
            origin_x: 0,
            origin_y: 0,
        }
    }

    /// A full view over an owned shard cube that reports the scene
    /// coordinates `(origin_x, origin_y)` the shard was cut from.  This is
    /// the decode-side constructor of the wire codec: the shard's samples
    /// were materialized into the frame on the sending side, so the
    /// receiver owns a standalone cube but must still answer
    /// [`CubeView::x0`] / [`CubeView::row_start`] with the original window
    /// position for results to be byte-identical to in-process execution.
    pub fn standalone(storage: Arc<HyperCube>, origin_x: usize, origin_y: usize) -> Self {
        let dims = storage.dims();
        Self {
            storage,
            x0: 0,
            y0: 0,
            width: dims.width,
            height: dims.height,
            band0: 0,
            bands: dims.bands,
            origin_x,
            origin_y,
        }
    }

    /// A view of the spatial window `[x0, x0+width) × [y0, y0+height)` over
    /// every band.
    pub fn window(
        storage: Arc<HyperCube>,
        x0: usize,
        y0: usize,
        width: usize,
        height: usize,
    ) -> Result<Self> {
        if x0 + width > storage.width() {
            return Err(HsiError::OutOfBounds {
                what: "view x extent",
                index: x0 + width,
                bound: storage.width(),
            });
        }
        if y0 + height > storage.height() {
            return Err(HsiError::OutOfBounds {
                what: "view y extent",
                index: y0 + height,
                bound: storage.height(),
            });
        }
        let bands = storage.bands();
        Ok(Self {
            storage,
            x0,
            y0,
            width,
            height,
            band0: 0,
            bands,
            origin_x: x0,
            origin_y: y0,
        })
    }

    /// Narrows the view to the band window `[band0, band0+bands)`; per-pixel
    /// access becomes strided through the backing pixel's full band run.
    pub fn with_band_window(mut self, band0: usize, bands: usize) -> Result<Self> {
        if self.band0 + band0 + bands > self.band0 + self.bands {
            return Err(HsiError::OutOfBounds {
                what: "view band extent",
                index: band0 + bands,
                bound: self.bands,
            });
        }
        self.band0 += band0;
        self.bands = bands;
        Ok(self)
    }

    /// The backing storage the view shares.
    pub fn storage(&self) -> &Arc<HyperCube> {
        &self.storage
    }

    /// Dimensions of the *viewed* region (not the backing cube).
    pub fn dims(&self) -> CubeDims {
        CubeDims::new(self.width, self.height, self.bands)
    }

    /// Width of the viewed window in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the viewed window in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of bands the view exposes.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// First *scene* column of the window.  For views into the scene cube
    /// this is the backing-cube column; for a decoded [`CubeView::standalone`]
    /// view it is the column the shard was originally cut from.
    // Deliberately not the `x0` *field* (the storage offset): the public
    // coordinate system is the scene's, which `origin_x` tracks across a
    // wire trip.
    #[allow(clippy::misnamed_getters)]
    pub fn x0(&self) -> usize {
        self.origin_x
    }

    /// First *scene* row of the window (the sub-cube's `row_start`).  Like
    /// [`CubeView::x0`], this survives a trip across the wire even though
    /// the decoded view's backing storage starts at row zero.
    pub fn row_start(&self) -> usize {
        self.origin_y
    }

    /// Number of pixels in the window.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Number of samples the view exposes.
    pub fn samples(&self) -> usize {
        self.pixels() * self.bands
    }

    /// Payload size in bytes if this view were materialized or shipped by
    /// value — the amount the zero-copy message plane *avoids* cloning.
    pub fn payload_bytes(&self) -> usize {
        self.samples() * std::mem::size_of::<f64>()
    }

    /// Whether the view covers its entire backing cube.
    pub fn is_full(&self) -> bool {
        self.x0 == 0 && self.y0 == 0 && self.band0 == 0 && self.dims() == self.storage.dims()
    }

    /// Flat offset in the backing storage of view pixel `(x, y)`'s first
    /// exposed band.
    fn pixel_offset(&self, x: usize, y: usize) -> Result<usize> {
        if x >= self.width {
            return Err(HsiError::OutOfBounds {
                what: "view x",
                index: x,
                bound: self.width,
            });
        }
        if y >= self.height {
            return Err(HsiError::OutOfBounds {
                what: "view y",
                index: y,
                bound: self.height,
            });
        }
        Ok(
            ((self.y0 + y) * self.storage.width() + self.x0 + x) * self.storage.bands()
                + self.band0,
        )
    }

    /// The exposed spectral samples of view pixel `(x, y)` — a borrow of the
    /// shared storage, no copy.
    pub fn pixel(&self, x: usize, y: usize) -> Result<&[f64]> {
        let off = self.pixel_offset(x, y)?;
        Ok(&self.storage.samples()[off..off + self.bands])
    }

    /// One full window row as a contiguous sample slice.  Only possible when
    /// the band window covers every backing band (otherwise pixels within
    /// the row are not adjacent); callers needing per-band access use
    /// [`CubeView::pixel`] or [`CubeView::iter_pixels`].
    pub fn row_samples(&self, y: usize) -> Option<&[f64]> {
        if self.band0 != 0 || self.bands != self.storage.bands() || y >= self.height {
            return None;
        }
        let off = ((self.y0 + y) * self.storage.width() + self.x0) * self.storage.bands();
        Some(&self.storage.samples()[off..off + self.width * self.bands])
    }

    /// Iterates the window's pixel slices in row-major order, striding
    /// through the backing storage without copying.
    pub fn iter_pixels(&self) -> impl Iterator<Item = &[f64]> + '_ {
        let samples = self.storage.samples();
        let storage_width = self.storage.width();
        let storage_bands = self.storage.bands();
        (0..self.height).flat_map(move |y| {
            (0..self.width).map(move |x| {
                let off =
                    ((self.y0 + y) * storage_width + self.x0 + x) * storage_bands + self.band0;
                &samples[off..off + self.bands]
            })
        })
    }

    /// Collects every window pixel as an owned [`Vector`] (the pixel-vector
    /// type the screening and transform kernels operate on).
    pub fn pixel_vectors(&self) -> Vec<Vector> {
        self.iter_pixels().map(Vector::from).collect()
    }

    /// Deep-copies the viewed window into an owned cube.  This is the only
    /// way pixel data leaves the shared storage — a true process or
    /// serialization boundary — and it is charged to the clone ledger.
    pub fn materialize(&self) -> HyperCube {
        charge_cloned_bytes(self.payload_bytes());
        let dims = self.dims();
        let mut samples = Vec::with_capacity(dims.samples());
        let mut y = 0;
        while y < self.height {
            if let Some(row) = self.row_samples(y) {
                samples.extend_from_slice(row);
            } else {
                for x in 0..self.width {
                    samples.extend_from_slice(self.pixel(x, y).expect("in bounds"));
                }
            }
            y += 1;
        }
        HyperCube::from_samples(dims, samples).expect("view dims are consistent")
    }
}

impl PartialEq for CubeView {
    /// Views are equal when they expose the same dimensions and the same
    /// sample values — regardless of which storage or offsets back them.
    fn eq(&self, other: &Self) -> bool {
        self.dims() == other.dims() && self.iter_pixels().eq(other.iter_pixels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coded_cube(width: usize, height: usize, bands: usize) -> Arc<HyperCube> {
        // Sample value encodes (x, y, band) uniquely.
        let dims = CubeDims::new(width, height, bands);
        let mut cube = HyperCube::zeros(dims);
        for y in 0..height {
            for x in 0..width {
                let v: Vec<f64> = (0..bands)
                    .map(|b| (x * 10_000 + y * 100 + b) as f64)
                    .collect();
                cube.set_pixel(x, y, &v).unwrap();
            }
        }
        Arc::new(cube)
    }

    #[test]
    fn full_view_exposes_the_whole_cube() {
        let cube = coded_cube(4, 3, 2);
        let view = CubeView::full(Arc::clone(&cube));
        assert!(view.is_full());
        assert_eq!(view.dims(), cube.dims());
        assert_eq!(view.pixel(3, 2).unwrap(), cube.pixel(3, 2).unwrap());
        assert_eq!(view.pixels(), 12);
        assert_eq!(view.samples(), 24);
        assert_eq!(view.payload_bytes(), 24 * 8);
    }

    #[test]
    fn window_view_reads_the_right_pixels_without_copying() {
        let cube = coded_cube(5, 4, 3);
        let view = CubeView::window(Arc::clone(&cube), 1, 2, 3, 2).unwrap();
        assert!(!view.is_full());
        assert_eq!(view.row_start(), 2);
        assert_eq!(view.x0(), 1);
        for y in 0..2 {
            for x in 0..3 {
                assert_eq!(view.pixel(x, y).unwrap(), cube.pixel(x + 1, y + 2).unwrap());
            }
        }
        // Storage is shared, not duplicated.
        assert!(Arc::ptr_eq(view.storage(), &cube));
    }

    #[test]
    fn window_rejects_out_of_bounds_extents() {
        let cube = coded_cube(3, 3, 2);
        assert!(CubeView::window(Arc::clone(&cube), 2, 0, 2, 1).is_err());
        assert!(CubeView::window(Arc::clone(&cube), 0, 2, 1, 2).is_err());
        let view = CubeView::full(cube);
        assert!(view.pixel(3, 0).is_err());
        assert!(view.pixel(0, 3).is_err());
    }

    #[test]
    fn band_window_strides_within_pixels() {
        let cube = coded_cube(2, 2, 5);
        let view = CubeView::full(Arc::clone(&cube))
            .with_band_window(1, 3)
            .unwrap();
        assert_eq!(view.bands(), 3);
        assert_eq!(view.pixel(1, 1).unwrap(), &cube.pixel(1, 1).unwrap()[1..4]);
        // Narrowing an already-narrow view is relative to the current window.
        let narrower = view.with_band_window(1, 1).unwrap();
        assert_eq!(
            narrower.pixel(0, 0).unwrap(),
            &cube.pixel(0, 0).unwrap()[2..3]
        );
        // Rows of a band-windowed view are not contiguous.
        assert!(narrower.row_samples(0).is_none());
    }

    #[test]
    fn band_window_rejects_overflow() {
        let cube = coded_cube(2, 2, 4);
        assert!(CubeView::full(Arc::clone(&cube))
            .with_band_window(3, 2)
            .is_err());
        assert!(CubeView::full(cube).with_band_window(0, 5).is_err());
    }

    #[test]
    fn iter_pixels_matches_owned_window() {
        let cube = coded_cube(6, 5, 2);
        let view = CubeView::window(Arc::clone(&cube), 2, 1, 3, 4).unwrap();
        let owned = cube.window(2, 1, 3, 4).unwrap();
        let from_view: Vec<&[f64]> = view.iter_pixels().collect();
        let from_owned: Vec<&[f64]> = owned.iter_pixels().collect();
        assert_eq!(from_view, from_owned);
        assert_eq!(view.pixel_vectors(), owned.pixel_vectors());
    }

    #[test]
    fn materialize_round_trips_and_charges_the_ledger() {
        let cube = coded_cube(4, 4, 3);
        let view = CubeView::window(Arc::clone(&cube), 1, 1, 2, 3).unwrap();
        let before = CloneLedger::snapshot();
        let owned = view.materialize();
        assert_eq!(owned, cube.window(1, 1, 2, 3).unwrap());
        assert!(before.delta() >= view.payload_bytes() as u64);
    }

    #[test]
    fn materialize_handles_band_windows() {
        let cube = coded_cube(3, 2, 4);
        let view = CubeView::full(Arc::clone(&cube))
            .with_band_window(2, 2)
            .unwrap();
        let owned = view.materialize();
        assert_eq!(owned.dims(), CubeDims::new(3, 2, 2));
        assert_eq!(owned.pixel(2, 1).unwrap(), &cube.pixel(2, 1).unwrap()[2..4]);
    }

    #[test]
    fn views_compare_by_content() {
        let cube = coded_cube(4, 4, 2);
        let a = CubeView::window(Arc::clone(&cube), 0, 1, 2, 2).unwrap();
        let b = CubeView::window(Arc::clone(&cube), 0, 1, 2, 2).unwrap();
        let c = CubeView::window(Arc::clone(&cube), 1, 1, 2, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // A clone is an Arc bump, equal by definition.
        assert_eq!(a.clone(), a);
    }

    #[test]
    fn assembly_ledger_tracks_in_place_decoding_separately_from_clones() {
        let before = CloneLedger::snapshot();
        charge_assembled_bytes(4096);
        assert!(before.assembled_delta() >= 4096);
        // Assembly charges never leak into the clone counter: the clone
        // delta only moves when payload is actually deep-copied.
        let cube = coded_cube(2, 2, 2);
        let cloned_before = before.delta();
        CubeView::full(cube).materialize();
        assert!(before.delta() >= cloned_before + 2 * 2 * 2 * 8);
    }

    #[test]
    fn standalone_view_preserves_scene_origin() {
        let cube = coded_cube(5, 4, 3);
        let window = CubeView::window(Arc::clone(&cube), 1, 2, 3, 2).unwrap();
        // Simulate the wire: materialize the window, rebuild a standalone
        // view over the owned shard with the original scene coordinates.
        let shard = Arc::new(window.materialize());
        let decoded = CubeView::standalone(shard, window.x0(), window.row_start());
        assert_eq!(decoded.x0(), 1);
        assert_eq!(decoded.row_start(), 2);
        assert_eq!(decoded.dims(), window.dims());
        // Content-equal to the original window even though the storage and
        // internal offsets differ.
        assert_eq!(decoded, window);
    }

    #[test]
    fn single_pixel_view_is_valid() {
        let cube = coded_cube(3, 3, 2);
        let view = CubeView::window(Arc::clone(&cube), 2, 2, 1, 1).unwrap();
        assert_eq!(view.pixels(), 1);
        assert_eq!(view.pixel(0, 0).unwrap(), cube.pixel(2, 2).unwrap());
        assert_eq!(view.materialize(), cube.window(2, 2, 1, 1).unwrap());
    }
}
