//! Synthetic HYDICE-like scene generation.
//!
//! The paper's test data is a 210-channel HYDICE acquisition of foliated
//! scenes (400 nm – 2.5 µm) containing mechanized vehicles in open fields and
//! under camouflage.  That data set is not redistributable, so this module
//! synthesises scenes with the same *statistical* structure:
//!
//! * each pixel is a mixture of a small number of material signatures,
//!   producing strongly correlated bands (which is what makes PCT useful);
//! * background materials (forest, grass, soil) dominate spatially;
//! * a few rare, spectrally distinct targets (vehicles, some under a
//!   camouflage net that blends their signature towards foliage) are placed
//!   in the scene — these are exactly the objects spectral screening is
//!   designed to keep from being washed out by the PCT;
//! * per-band Gaussian sensor noise and smooth spatial texture.
//!
//! Generation is fully deterministic for a given [`SceneConfig`] and seed, so
//! every experiment in the benchmark harness is reproducible.

use crate::cube::{CubeDims, HyperCube};
use crate::{HsiError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Spectral range of the HYDICE sensor in nanometres.
pub const HYDICE_MIN_WAVELENGTH_NM: f64 = 400.0;
/// Upper end of the HYDICE spectral range in nanometres (2.5 µm).
pub const HYDICE_MAX_WAVELENGTH_NM: f64 = 2500.0;

/// Scene material classes with HYDICE-plausible reflectance behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Deciduous/coniferous forest canopy (dominant background).
    Forest,
    /// Open grassland.
    Grass,
    /// Bare soil / dirt track.
    Soil,
    /// Paved road or packed gravel.
    Road,
    /// Open water.
    Water,
    /// Mechanized-vehicle paint (the target of interest).
    VehiclePaint,
    /// Camouflage netting: vegetation-like in the visible range but with a
    /// synthetic-fibre signature in the short-wave infrared.
    CamouflageNet,
    /// Shadowed ground.
    Shadow,
}

impl Material {
    /// All materials, in a stable order.
    pub const ALL: [Material; 8] = [
        Material::Forest,
        Material::Grass,
        Material::Soil,
        Material::Road,
        Material::Water,
        Material::VehiclePaint,
        Material::CamouflageNet,
        Material::Shadow,
    ];

    /// Reflectance of the material at `wavelength_nm`, in `[0, 1]`.
    ///
    /// The curves are smooth analytic approximations of published field
    /// spectra: vegetation has the chlorophyll well in the visible, the red
    /// edge near 700 nm, high NIR plateau and water-absorption dips at 1400
    /// and 1900 nm; soil/road rise slowly with wavelength; water reflectance
    /// decays to almost zero in the infrared; vehicle paint is relatively
    /// flat with a distinctive absorption near 900 nm; camouflage tracks
    /// vegetation in the visible but diverges in the SWIR.
    pub fn reflectance(&self, wavelength_nm: f64) -> f64 {
        let w = wavelength_nm;
        let gauss = |centre: f64, width: f64| (-((w - centre) / width).powi(2)).exp();
        let sigmoid = |centre: f64, width: f64| 1.0 / (1.0 + (-(w - centre) / width).exp());
        let vegetation = {
            let green_bump = 0.08 * gauss(550.0, 40.0);
            let red_edge = 0.45 * sigmoid(715.0, 18.0);
            let base = 0.04 + green_bump + red_edge;
            let water_dips = 0.23 * gauss(1450.0, 70.0) + 0.28 * gauss(1940.0, 90.0);
            let swir_rolloff = 0.15 * sigmoid(1300.0, 200.0);
            (base - water_dips - swir_rolloff).clamp(0.01, 1.0)
        };
        let value = match self {
            Material::Forest => 0.9 * vegetation,
            Material::Grass => (vegetation + 0.05 * gauss(550.0, 60.0)).clamp(0.01, 1.0),
            Material::Soil => (0.08 + 0.25 * sigmoid(1000.0, 400.0) - 0.06 * gauss(1900.0, 120.0))
                .clamp(0.01, 1.0),
            Material::Road => (0.12 + 0.10 * sigmoid(900.0, 500.0)).clamp(0.01, 1.0),
            Material::Water => (0.07 * gauss(450.0, 120.0) + 0.015).clamp(0.001, 1.0),
            Material::VehiclePaint => {
                (0.30 - 0.12 * gauss(900.0, 80.0) - 0.05 * gauss(1700.0, 150.0)
                    + 0.04 * sigmoid(2000.0, 300.0))
                .clamp(0.01, 1.0)
            }
            Material::CamouflageNet => {
                // Vegetation-like below ~1000nm, synthetic fibre above.
                let blend = sigmoid(1050.0, 60.0);
                let fibre = 0.50 + 0.10 * gauss(1650.0, 200.0) - 0.05 * gauss(1940.0, 90.0);
                ((1.0 - blend) * vegetation + blend * fibre).clamp(0.01, 1.0)
            }
            Material::Shadow => 0.25 * vegetation + 0.01,
        };
        value.clamp(0.0, 1.0)
    }

    /// A short stable label, used in traces and example output.
    pub fn label(&self) -> &'static str {
        match self {
            Material::Forest => "forest",
            Material::Grass => "grass",
            Material::Soil => "soil",
            Material::Road => "road",
            Material::Water => "water",
            Material::VehiclePaint => "vehicle",
            Material::CamouflageNet => "camouflage",
            Material::Shadow => "shadow",
        }
    }
}

/// A vehicle target placed in the synthetic scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Target {
    /// Spatial x of the target centre.
    pub x: usize,
    /// Spatial y of the target centre.
    pub y: usize,
    /// Half-width of the target footprint in pixels.
    pub half_size: usize,
    /// Whether the vehicle sits under a camouflage net, which mixes the
    /// paint signature with the net signature.
    pub camouflaged: bool,
}

/// Configuration of the synthetic scene generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Cube dimensions to generate.
    pub dims: CubeDims,
    /// RNG seed; the same seed and config always produce the same cube.
    pub seed: u64,
    /// Standard deviation of per-sample Gaussian sensor noise, as a fraction
    /// of full scale.
    pub noise_sigma: f64,
    /// Peak radiance full scale (HYDICE delivers 16-bit counts; we use a
    /// floating point full scale of 4095 by default, matching a 12-bit ADC).
    pub full_scale: f64,
    /// Vehicle targets to embed.
    pub targets: Vec<Target>,
    /// Fraction of the scene covered by open field (grass/soil) as opposed to
    /// forest, in `[0, 1]`.
    pub open_field_fraction: f64,
}

impl SceneConfig {
    /// The configuration used for the performance experiments (Figures 4–5):
    /// the 320×320×105 cube the paper states was the initial cube size.
    pub fn paper_eval(seed: u64) -> Self {
        Self {
            dims: CubeDims::paper_eval(),
            seed,
            noise_sigma: 0.01,
            full_scale: 4095.0,
            targets: default_targets(320, 320),
            open_field_fraction: 0.35,
        }
    }

    /// The full 210-band configuration used for the qualitative fusion result
    /// (Figure 3).
    pub fn paper_full(seed: u64) -> Self {
        Self {
            dims: CubeDims::paper_full(),
            seed,
            noise_sigma: 0.01,
            full_scale: 4095.0,
            targets: default_targets(320, 320),
            open_field_fraction: 0.35,
        }
    }

    /// A small configuration for unit tests and the quickstart example.
    pub fn small(seed: u64) -> Self {
        Self {
            dims: CubeDims::new(32, 32, 16),
            seed,
            noise_sigma: 0.01,
            full_scale: 4095.0,
            targets: vec![
                Target {
                    x: 8,
                    y: 24,
                    half_size: 2,
                    camouflaged: true,
                },
                Target {
                    x: 24,
                    y: 8,
                    half_size: 2,
                    camouflaged: false,
                },
            ],
            open_field_fraction: 0.4,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.dims.width == 0 || self.dims.height == 0 || self.dims.bands == 0 {
            return Err(HsiError::InvalidConfig(
                "cube dimensions must be non-zero".to_string(),
            ));
        }
        if !(0.0..=1.0).contains(&self.open_field_fraction) {
            return Err(HsiError::InvalidConfig(format!(
                "open_field_fraction {} outside [0, 1]",
                self.open_field_fraction
            )));
        }
        if self.noise_sigma < 0.0 {
            return Err(HsiError::InvalidConfig(
                "noise_sigma must be >= 0".to_string(),
            ));
        }
        if self.full_scale <= 0.0 {
            return Err(HsiError::InvalidConfig(
                "full_scale must be > 0".to_string(),
            ));
        }
        Ok(())
    }
}

/// Default target layout mirroring the paper's description: vehicles in open
/// fields plus one camouflaged vehicle in the lower-left corner (which the
/// paper's Figure 3 discussion highlights).
fn default_targets(width: usize, height: usize) -> Vec<Target> {
    vec![
        Target {
            x: width / 8,
            y: height - height / 6,
            half_size: 4,
            camouflaged: true,
        },
        Target {
            x: width / 2,
            y: height / 3,
            half_size: 5,
            camouflaged: false,
        },
        Target {
            x: width - width / 4,
            y: height / 2,
            half_size: 4,
            camouflaged: false,
        },
    ]
}

/// Deterministic synthetic scene generator.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    config: SceneConfig,
}

impl SceneGenerator {
    /// Creates a generator after validating the configuration.
    pub fn new(config: SceneConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The configuration the generator was built with.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Wavelength (nm) of spectral band `b`, spread uniformly over the
    /// HYDICE range.
    pub fn wavelength(&self, band: usize) -> f64 {
        let bands = self.config.dims.bands.max(1);
        if bands == 1 {
            return HYDICE_MIN_WAVELENGTH_NM;
        }
        HYDICE_MIN_WAVELENGTH_NM
            + (HYDICE_MAX_WAVELENGTH_NM - HYDICE_MIN_WAVELENGTH_NM) * band as f64
                / (bands - 1) as f64
    }

    /// Index of the band whose wavelength is closest to `wavelength_nm`
    /// (used by the examples to pick the 400 nm and 1998 nm frames shown in
    /// Figure 2).
    pub fn band_for_wavelength(&self, wavelength_nm: f64) -> usize {
        let mut best = 0;
        let mut best_dist = f64::INFINITY;
        for b in 0..self.config.dims.bands {
            let d = (self.wavelength(b) - wavelength_nm).abs();
            if d < best_dist {
                best_dist = d;
                best = b;
            }
        }
        best
    }

    /// The dominant background material at `(x, y)` before targets are
    /// placed.  Layout: a river along one edge, a road crossing the scene,
    /// and a forest/field split controlled by `open_field_fraction` with a
    /// wavy boundary so the classes are spatially coherent.
    pub fn background_material(&self, x: usize, y: usize) -> Material {
        let w = self.config.dims.width as f64;
        let h = self.config.dims.height as f64;
        let fx = x as f64 / w.max(1.0);
        let fy = y as f64 / h.max(1.0);

        // River along the top edge.
        if fy < 0.06 {
            return Material::Water;
        }
        // Road: a diagonal band.
        let road_pos = 0.15 + 0.6 * fx;
        if (fy - road_pos).abs() < 0.015 {
            return Material::Road;
        }
        // Wavy forest/field boundary.
        let boundary = self.config.open_field_fraction + 0.08 * (fx * 9.0).sin() * (fy * 7.0).cos();
        if fy > 1.0 - boundary {
            // Open field: alternate grass and soil patches.
            let patch = ((x / 13) + (y / 17)) % 5;
            if patch == 0 {
                Material::Soil
            } else {
                Material::Grass
            }
        } else {
            // Forest with occasional shadow pockets.
            if ((x / 7) * 31 + (y / 7) * 17).is_multiple_of(23) {
                Material::Shadow
            } else {
                Material::Forest
            }
        }
    }

    /// The material of pixel `(x, y)` after target placement.
    pub fn material_at(&self, x: usize, y: usize) -> Material {
        for t in &self.config.targets {
            let dx = x as isize - t.x as isize;
            let dy = y as isize - t.y as isize;
            if dx.unsigned_abs() <= t.half_size && dy.unsigned_abs() <= t.half_size {
                return if t.camouflaged {
                    Material::CamouflageNet
                } else {
                    Material::VehiclePaint
                };
            }
        }
        self.background_material(x, y)
    }

    /// Generates the cube.
    pub fn generate(&self) -> HyperCube {
        let dims = self.config.dims;
        let mut cube = HyperCube::zeros(dims);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let full_scale = self.config.full_scale;
        // Solar-illumination-like envelope: brighter in the visible/NIR,
        // falling off into the SWIR, shared by all materials so bands stay
        // strongly correlated (the property PCT exploits).
        let illumination: Vec<f64> = (0..dims.bands)
            .map(|b| {
                let w = self.wavelength(b);
                0.35 + 0.65 * (-((w - 800.0) / 900.0).powi(2)).exp()
            })
            .collect();

        let mut pixel = vec![0.0_f64; dims.bands];
        for y in 0..dims.height {
            for x in 0..dims.width {
                let material = self.material_at(x, y);
                // Smooth per-pixel brightness texture (terrain slope, canopy
                // density), identical across bands.
                let fx = x as f64 * 0.11;
                let fy = y as f64 * 0.07;
                let texture = 1.0 + 0.10 * (fx.sin() * fy.cos()) + 0.05 * ((fx * 0.37).cos());
                // Camouflaged targets mix net and paint signatures.
                let is_camouflaged_target = material == Material::CamouflageNet;
                for (b, value) in pixel.iter_mut().enumerate() {
                    let w = self.wavelength(b);
                    let mut reflectance = material.reflectance(w);
                    if is_camouflaged_target {
                        reflectance =
                            0.7 * reflectance + 0.3 * Material::VehiclePaint.reflectance(w);
                    }
                    let clean = full_scale * illumination[b] * reflectance * texture;
                    let noise = if self.config.noise_sigma > 0.0 {
                        // Box–Muller from two uniform draws keeps us on the
                        // rand API surface available offline.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                        z * self.config.noise_sigma * full_scale
                    } else {
                        0.0
                    };
                    *value = (clean + noise).max(0.0);
                }
                cube.set_pixel(x, y, &pixel)
                    .expect("generator writes in bounds");
            }
        }
        cube
    }

    /// Generates the cube and also returns the ground-truth material map in
    /// row-major spatial order (used by tests that check targets remain
    /// distinguishable after fusion).
    pub fn generate_with_truth(&self) -> (HyperCube, Vec<Material>) {
        let cube = self.generate();
        let dims = self.config.dims;
        let mut truth = Vec::with_capacity(dims.pixels());
        for y in 0..dims.height {
            for x in 0..dims.width {
                truth.push(self.material_at(x, y));
            }
        }
        (cube, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Vector;

    #[test]
    fn reflectances_stay_in_unit_interval() {
        for material in Material::ALL {
            for band in 0..500 {
                let w = 400.0 + band as f64 * 4.2;
                let r = material.reflectance(w);
                assert!((0.0..=1.0).contains(&r), "{material:?} at {w}nm = {r}");
            }
        }
    }

    #[test]
    fn vegetation_has_red_edge() {
        // NIR reflectance of forest should far exceed red reflectance.
        let red = Material::Forest.reflectance(660.0);
        let nir = Material::Forest.reflectance(860.0);
        assert!(nir > 3.0 * red, "red {red}, nir {nir}");
    }

    #[test]
    fn water_is_dark_in_infrared() {
        assert!(Material::Water.reflectance(1600.0) < 0.05);
    }

    #[test]
    fn camouflage_tracks_vegetation_in_visible_but_not_swir() {
        let vis_diff = (Material::CamouflageNet.reflectance(700.0)
            - Material::Forest.reflectance(700.0))
        .abs();
        let swir_diff = (Material::CamouflageNet.reflectance(1650.0)
            - Material::Forest.reflectance(1650.0))
        .abs();
        assert!(
            swir_diff > 2.0 * vis_diff,
            "vis {vis_diff}, swir {swir_diff}"
        );
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let config = SceneConfig::small(7);
        let a = SceneGenerator::new(config.clone()).unwrap().generate();
        let b = SceneGenerator::new(config).unwrap().generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SceneGenerator::new(SceneConfig::small(1))
            .unwrap()
            .generate();
        let b = SceneGenerator::new(SceneConfig::small(2))
            .unwrap()
            .generate();
        assert_ne!(a, b);
    }

    #[test]
    fn config_validation_rejects_bad_values() {
        let mut c = SceneConfig::small(0);
        c.dims.bands = 0;
        assert!(SceneGenerator::new(c).is_err());

        let mut c = SceneConfig::small(0);
        c.open_field_fraction = 1.5;
        assert!(SceneGenerator::new(c).is_err());

        let mut c = SceneConfig::small(0);
        c.noise_sigma = -0.1;
        assert!(SceneGenerator::new(c).is_err());

        let mut c = SceneConfig::small(0);
        c.full_scale = 0.0;
        assert!(SceneGenerator::new(c).is_err());
    }

    #[test]
    fn wavelengths_span_hydice_range() {
        let g = SceneGenerator::new(SceneConfig::small(0)).unwrap();
        assert_eq!(g.wavelength(0), HYDICE_MIN_WAVELENGTH_NM);
        assert!((g.wavelength(15) - HYDICE_MAX_WAVELENGTH_NM).abs() < 1e-9);
    }

    #[test]
    fn band_for_wavelength_picks_nearest() {
        let g = SceneGenerator::new(SceneConfig::small(0)).unwrap();
        assert_eq!(g.band_for_wavelength(400.0), 0);
        assert_eq!(g.band_for_wavelength(2500.0), 15);
        let mid = g.band_for_wavelength(1450.0);
        assert!((g.wavelength(mid) - 1450.0).abs() < 140.0);
    }

    #[test]
    fn samples_are_nonnegative_and_bounded() {
        let g = SceneGenerator::new(SceneConfig::small(3)).unwrap();
        let cube = g.generate();
        for &s in cube.samples() {
            assert!(s >= 0.0);
            assert!(s < 2.0 * 4095.0);
        }
    }

    #[test]
    fn truth_map_marks_targets() {
        let g = SceneGenerator::new(SceneConfig::small(3)).unwrap();
        let (_, truth) = g.generate_with_truth();
        assert!(truth.contains(&Material::VehiclePaint));
        assert!(truth.contains(&Material::CamouflageNet));
        assert!(truth.contains(&Material::Forest));
    }

    #[test]
    fn targets_are_rare() {
        let g = SceneGenerator::new(SceneConfig::paper_eval(1)).unwrap();
        let dims = g.config().dims;
        let mut target_pixels = 0usize;
        for y in 0..dims.height {
            for x in 0..dims.width {
                let m = g.material_at(x, y);
                if m == Material::VehiclePaint || m == Material::CamouflageNet {
                    target_pixels += 1;
                }
            }
        }
        // Targets cover well under 1% of the scene, as in the HYDICE frames.
        assert!(target_pixels > 0);
        assert!((target_pixels as f64) < 0.01 * dims.pixels() as f64);
    }

    #[test]
    fn vehicle_pixels_are_spectrally_distinct_from_forest() {
        let g = SceneGenerator::new(SceneConfig::small(11)).unwrap();
        let (cube, truth) = g.generate_with_truth();
        let dims = cube.dims();
        let mut vehicle = None;
        let mut forest = None;
        for y in 0..dims.height {
            for x in 0..dims.width {
                match truth[y * dims.width + x] {
                    Material::VehiclePaint if vehicle.is_none() => {
                        vehicle = Some(cube.pixel_vector(x, y).unwrap())
                    }
                    Material::Forest if forest.is_none() => {
                        forest = Some(cube.pixel_vector(x, y).unwrap())
                    }
                    _ => {}
                }
            }
        }
        let vehicle: Vector = vehicle.expect("scene contains a vehicle");
        let forest: Vector = forest.expect("scene contains forest");
        let angle = vehicle.spectral_angle(&forest).unwrap();
        assert!(
            angle > 0.05,
            "vehicle/forest spectral angle too small: {angle}"
        );
    }

    #[test]
    fn bands_are_strongly_correlated() {
        // Adjacent bands of the same scene should be highly correlated —
        // the redundancy PCT removes.
        let g = SceneGenerator::new(SceneConfig::small(5)).unwrap();
        let cube = g.generate();
        let a = cube.band_plane(4).unwrap();
        let b = cube.band_plane(5).unwrap();
        let ma = linalg::reduce::mean(&a).unwrap();
        let mb = linalg::reduce::mean(&b).unwrap();
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for (x, y) in a.iter().zip(&b) {
            cov += (x - ma) * (y - mb);
            va += (x - ma) * (x - ma);
            vb += (y - mb) * (y - mb);
        }
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr > 0.9, "adjacent band correlation {corr}");
    }
}
