//! Image and cube file I/O.
//!
//! Provides binary PGM (P5) output for single spectral bands (the Figure 2
//! frames), binary PPM (P6) output for fused colour composites (Figure 3),
//! and a minimal binary container (`.hsc`, "hyper-spectral cube") for
//! persisting and reloading synthetic cubes so experiments can be re-run on
//! identical data without regenerating scenes.

use crate::cube::{CubeDims, HyperCube};
use crate::rgb::RgbImage;
use crate::{HsiError, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary cube container format.
const HSC_MAGIC: &[u8; 4] = b"HSC1";

/// Linearly rescales a band plane to 8-bit grey values.
///
/// A constant plane maps to mid-grey so the output is still a valid image.
pub fn plane_to_gray(plane: &[f64]) -> Vec<u8> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in plane {
        min = min.min(v);
        max = max.max(v);
    }
    if plane.is_empty() || !min.is_finite() || !max.is_finite() {
        return vec![0; plane.len()];
    }
    let range = max - min;
    if range <= 0.0 {
        return vec![128; plane.len()];
    }
    plane
        .iter()
        .map(|&v| (((v - min) / range) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect()
}

/// Writes one spectral band of a cube as a binary PGM file.
pub fn write_band_pgm<P: AsRef<Path>>(cube: &HyperCube, band: usize, path: P) -> Result<()> {
    let plane = cube.band_plane(band)?;
    let gray = plane_to_gray(&plane);
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P5\n{} {}\n255\n", cube.width(), cube.height())?;
    w.write_all(&gray)?;
    w.flush()?;
    Ok(())
}

/// Writes an RGB image as a binary PPM file.
pub fn write_ppm<P: AsRef<Path>>(image: &RgbImage, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P6\n{} {}\n255\n", image.width(), image.height())?;
    w.write_all(image.raw())?;
    w.flush()?;
    Ok(())
}

/// Reads a binary PPM file back into an [`RgbImage`] (used by tests that
/// verify the example binaries produce well-formed output).
pub fn read_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage> {
    let mut bytes = Vec::new();
    BufReader::new(std::fs::File::open(path)?).read_to_end(&mut bytes)?;
    parse_ppm(&bytes)
}

fn parse_ppm(bytes: &[u8]) -> Result<RgbImage> {
    let bad = |msg: &str| HsiError::InvalidConfig(format!("malformed PPM: {msg}"));
    let mut pos = 0usize;
    let mut next_token = |bytes: &[u8]| -> Result<String> {
        // Skip whitespace and comments.
        while pos < bytes.len() {
            if bytes[pos].is_ascii_whitespace() {
                pos += 1;
            } else if bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("unexpected end of header"));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };

    if next_token(bytes)? != "P6" {
        return Err(bad("missing P6 magic"));
    }
    let width: usize = next_token(bytes)?.parse().map_err(|_| bad("bad width"))?;
    let height: usize = next_token(bytes)?.parse().map_err(|_| bad("bad height"))?;
    let maxval: usize = next_token(bytes)?.parse().map_err(|_| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only maxval 255 supported"));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    pos += 1;
    let expected = width * height * 3;
    if bytes.len() < pos + expected {
        return Err(bad("truncated pixel data"));
    }
    RgbImage::from_raw(width, height, bytes[pos..pos + expected].to_vec())
}

/// Writes a cube to the binary `.hsc` container.
///
/// Layout: magic, three little-endian u64 dimensions, then all samples as
/// little-endian f64 in BIP order.
pub fn write_cube<P: AsRef<Path>>(cube: &HyperCube, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(HSC_MAGIC)?;
    w.write_all(&(cube.width() as u64).to_le_bytes())?;
    w.write_all(&(cube.height() as u64).to_le_bytes())?;
    w.write_all(&(cube.bands() as u64).to_le_bytes())?;
    for &s in cube.samples() {
        w.write_all(&s.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a cube from the binary `.hsc` container.
pub fn read_cube<P: AsRef<Path>>(path: P) -> Result<HyperCube> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != HSC_MAGIC {
        return Err(HsiError::InvalidConfig("not an HSC cube file".to_string()));
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut BufReader<std::fs::File>| -> Result<u64> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let width = read_u64(&mut r)? as usize;
    let height = read_u64(&mut r)? as usize;
    let bands = read_u64(&mut r)? as usize;
    let dims = CubeDims::new(width, height, bands);
    let mut data = Vec::with_capacity(dims.samples());
    let mut f64buf = [0u8; 8];
    for _ in 0..dims.samples() {
        r.read_exact(&mut f64buf)?;
        data.push(f64::from_le_bytes(f64buf));
    }
    HyperCube::from_samples(dims, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SceneConfig, SceneGenerator};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hsi_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn plane_to_gray_scales_to_full_range() {
        let gray = plane_to_gray(&[0.0, 5.0, 10.0]);
        assert_eq!(gray, vec![0, 128, 255]);
    }

    #[test]
    fn plane_to_gray_constant_plane_is_midgray() {
        assert_eq!(plane_to_gray(&[3.3; 4]), vec![128; 4]);
    }

    #[test]
    fn plane_to_gray_empty_is_empty() {
        assert!(plane_to_gray(&[]).is_empty());
    }

    #[test]
    fn ppm_round_trip_preserves_pixels() {
        let mut img = RgbImage::black(7, 5);
        for y in 0..5 {
            for x in 0..7 {
                img.set(x, y, [(x * 30) as u8, (y * 40) as u8, ((x + y) * 10) as u8])
                    .unwrap();
            }
        }
        let path = temp_path("roundtrip.ppm");
        write_ppm(&img, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(img, back);
    }

    #[test]
    fn parse_ppm_rejects_garbage() {
        assert!(parse_ppm(b"not an image").is_err());
        assert!(parse_ppm(b"P6\n2 2\n255\n\x00").is_err()); // truncated
        assert!(parse_ppm(b"P6\n2 2\n65535\n").is_err()); // unsupported depth
    }

    #[test]
    fn pgm_writer_produces_valid_header_and_size() {
        let cube = SceneGenerator::new(SceneConfig::small(2))
            .unwrap()
            .generate();
        let path = temp_path("band.pgm");
        write_band_pgm(&cube, 3, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(bytes.starts_with(b"P5\n32 32\n255\n"));
        assert_eq!(bytes.len(), "P5\n32 32\n255\n".len() + 32 * 32);
    }

    #[test]
    fn pgm_writer_rejects_bad_band() {
        let cube = SceneGenerator::new(SceneConfig::small(2))
            .unwrap()
            .generate();
        assert!(write_band_pgm(&cube, 99, temp_path("never.pgm")).is_err());
    }

    #[test]
    fn cube_container_round_trip() {
        let cube = SceneGenerator::new(SceneConfig::small(4))
            .unwrap()
            .generate();
        let path = temp_path("cube.hsc");
        write_cube(&cube, &path).unwrap();
        let back = read_cube(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cube, back);
    }

    #[test]
    fn cube_reader_rejects_wrong_magic() {
        let path = temp_path("bad.hsc");
        std::fs::write(&path, b"XXXXGARBAGE").unwrap();
        let result = read_cube(&path);
        std::fs::remove_file(&path).ok();
        assert!(result.is_err());
    }
}
