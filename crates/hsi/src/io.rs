//! Image and cube file I/O.
//!
//! Provides binary PGM (P5) output for single spectral bands (the Figure 2
//! frames), binary PPM (P6) output for fused colour composites (Figure 3),
//! a minimal binary container (`.hsc`, "hyper-spectral cube") for
//! persisting and reloading synthetic cubes so experiments can be re-run on
//! identical data, and the self-describing band-interleaved container
//! (`.hsif`) the streaming ingestion path reads: a fixed
//! [`CubeFileHeader`] (magic, version, [`Interleave`], dimensions) followed
//! by the samples in BSQ, BIL or BIP order — the three layouts real
//! imaging-spectrometer products ship in.

use crate::cube::{CubeDims, HyperCube};
use crate::rgb::RgbImage;
use crate::{HsiError, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary cube container format.
const HSC_MAGIC: &[u8; 4] = b"HSC1";

/// Magic bytes identifying the self-describing interleaved cube file.
pub const CUBE_FILE_MAGIC: &[u8; 4] = b"HSIF";

/// Version byte of the interleaved cube file format.
pub const CUBE_FILE_VERSION: u8 = 1;

/// Encoded size of a [`CubeFileHeader`]: magic, version, interleave, three
/// little-endian `u64` dimensions.
pub const CUBE_FILE_HEADER_LEN: usize = 4 + 1 + 1 + 3 * 8;

/// Canonical file extension of the interleaved cube container.
pub const CUBE_FILE_EXTENSION: &str = "hsif";

/// Largest payload a [`CubeFileHeader`] is allowed to announce (16 GiB —
/// an order of magnitude above any real acquisition).  Headers beyond it
/// are rejected at parse time so a corrupt or hostile file surfaces as a
/// typed error in the reader instead of a multi-terabyte allocation (and
/// likely abort) in whoever trusts the dimensions.
pub const MAX_CUBE_FILE_PAYLOAD_BYTES: u64 = 16 << 30;

/// Sample ordering of an interleaved cube file.
///
/// In-memory cubes are always BIP; the file layer supports all three
/// interleaves because that is what real sensor products ship in, and the
/// streaming decoder scatters file-order samples straight into BIP storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interleave {
    /// Band-interleaved by pixel: all bands of a pixel are adjacent
    /// (`for y { for x { for band } }` — the in-memory layout).
    Bip,
    /// Band-interleaved by line: one row of one band at a time
    /// (`for y { for band { for x } }`).
    Bil,
    /// Band-sequential: whole band planes back to back
    /// (`for band { for y { for x } }`).
    Bsq,
}

impl Interleave {
    /// Every interleave, in a stable order.
    pub const ALL: [Interleave; 3] = [Interleave::Bip, Interleave::Bil, Interleave::Bsq];

    /// A short lower-case label (`bip` / `bil` / `bsq`).
    pub fn label(&self) -> &'static str {
        match self {
            Interleave::Bip => "bip",
            Interleave::Bil => "bil",
            Interleave::Bsq => "bsq",
        }
    }

    /// The header byte encoding this interleave.
    pub fn as_byte(&self) -> u8 {
        match self {
            Interleave::Bip => 0,
            Interleave::Bil => 1,
            Interleave::Bsq => 2,
        }
    }

    /// Decodes a header byte.
    pub fn from_byte(byte: u8) -> Result<Interleave> {
        match byte {
            0 => Ok(Interleave::Bip),
            1 => Ok(Interleave::Bil),
            2 => Ok(Interleave::Bsq),
            other => Err(HsiError::InvalidConfig(format!(
                "unknown interleave byte {other}"
            ))),
        }
    }
}

/// The self-describing fixed header of an interleaved cube file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeFileHeader {
    /// Dimensions of the cube that follows.
    pub dims: CubeDims,
    /// Sample ordering of the payload.
    pub interleave: Interleave,
}

impl CubeFileHeader {
    /// Creates a header.
    pub fn new(dims: CubeDims, interleave: Interleave) -> Self {
        Self { dims, interleave }
    }

    /// Size in bytes of the sample payload the header announces.
    pub fn payload_bytes(&self) -> usize {
        self.dims.byte_size()
    }

    /// Encodes the header into its fixed wire form.
    pub fn encode(&self) -> [u8; CUBE_FILE_HEADER_LEN] {
        let mut out = [0u8; CUBE_FILE_HEADER_LEN];
        out[..4].copy_from_slice(CUBE_FILE_MAGIC);
        out[4] = CUBE_FILE_VERSION;
        out[5] = self.interleave.as_byte();
        out[6..14].copy_from_slice(&(self.dims.width as u64).to_le_bytes());
        out[14..22].copy_from_slice(&(self.dims.height as u64).to_le_bytes());
        out[22..30].copy_from_slice(&(self.dims.bands as u64).to_le_bytes());
        out
    }

    /// Parses and validates a header from the first
    /// [`CUBE_FILE_HEADER_LEN`] bytes of a file.
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < CUBE_FILE_HEADER_LEN {
            return Err(HsiError::InvalidConfig(format!(
                "cube file header truncated: {} of {CUBE_FILE_HEADER_LEN} bytes",
                bytes.len()
            )));
        }
        if &bytes[..4] != CUBE_FILE_MAGIC {
            return Err(HsiError::InvalidConfig(
                "not an HSIF cube file (bad magic)".to_string(),
            ));
        }
        if bytes[4] != CUBE_FILE_VERSION {
            return Err(HsiError::InvalidConfig(format!(
                "unsupported cube file version {}",
                bytes[4]
            )));
        }
        let interleave = Interleave::from_byte(bytes[5])?;
        let u64_at = |off: usize| {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[off..off + 8]);
            u64::from_le_bytes(buf)
        };
        let (width, height, bands) = (u64_at(6), u64_at(14), u64_at(22));
        if width == 0 || height == 0 || bands == 0 {
            return Err(HsiError::InvalidConfig(format!(
                "cube file header declares a zero dimension: {width}x{height}x{bands}"
            )));
        }
        // Checked arithmetic: wrapped products would let a corrupt header
        // smuggle absurd dimensions past the payload bound below.
        let payload = width
            .checked_mul(height)
            .and_then(|p| p.checked_mul(bands))
            .and_then(|s| s.checked_mul(std::mem::size_of::<f64>() as u64))
            .filter(|&p| p <= MAX_CUBE_FILE_PAYLOAD_BYTES)
            .ok_or_else(|| {
                HsiError::InvalidConfig(format!(
                    "cube file header declares an implausible payload: \
                     {width}x{height}x{bands} exceeds {MAX_CUBE_FILE_PAYLOAD_BYTES} bytes"
                ))
            })?;
        debug_assert!(payload <= MAX_CUBE_FILE_PAYLOAD_BYTES);
        Ok(Self {
            dims: CubeDims::new(width as usize, height as usize, bands as usize),
            interleave,
        })
    }
}

/// Flat BIP storage offset of the `index`-th sample of a file written in
/// `interleave` order over a cube of `dims`.  This is the scatter map the
/// streaming decoder applies chunk by chunk; `index` must be below
/// `dims.samples()`.
pub fn interleave_to_bip_offset(dims: CubeDims, interleave: Interleave, index: usize) -> usize {
    debug_assert!(index < dims.samples());
    let (w, bands) = (dims.width, dims.bands);
    match interleave {
        Interleave::Bip => index,
        Interleave::Bil => {
            // File order: for y { for band { for x } }.
            let y = index / (w * bands);
            let rem = index % (w * bands);
            let band = rem / w;
            let x = rem % w;
            (y * w + x) * bands + band
        }
        Interleave::Bsq => {
            // File order: for band { for y { for x } }.
            let pixels = dims.pixels();
            let band = index / pixels;
            let rem = index % pixels;
            (rem * bands) + band
        }
    }
}

/// Writes a cube as a self-describing interleaved cube file (`.hsif`):
/// [`CubeFileHeader`] followed by all samples as little-endian `f64` in the
/// requested interleave order.
pub fn write_cube_as<P: AsRef<Path>>(
    cube: &HyperCube,
    interleave: Interleave,
    path: P,
) -> Result<()> {
    let header = CubeFileHeader::new(cube.dims(), interleave);
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(&header.encode())?;
    let samples = cube.samples();
    for index in 0..cube.dims().samples() {
        let bip = interleave_to_bip_offset(cube.dims(), interleave, index);
        w.write_all(&samples[bip].to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a whole interleaved cube file back into a BIP [`HyperCube`] (the
/// non-streaming convenience counterpart of the `ingest` crate's chunked
/// decoder; used by tests and small tools).
pub fn read_cube_file<P: AsRef<Path>>(path: P) -> Result<(HyperCube, Interleave)> {
    let mut bytes = Vec::new();
    BufReader::new(std::fs::File::open(path)?).read_to_end(&mut bytes)?;
    let header = CubeFileHeader::parse(&bytes)?;
    let payload = &bytes[CUBE_FILE_HEADER_LEN..];
    if payload.len() != header.payload_bytes() {
        return Err(HsiError::ShapeMismatch {
            expected: header.payload_bytes(),
            actual: payload.len(),
        });
    }
    let mut data = vec![0.0_f64; header.dims.samples()];
    for (index, chunk) in payload.chunks_exact(8).enumerate() {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        data[interleave_to_bip_offset(header.dims, header.interleave, index)] =
            f64::from_le_bytes(buf);
    }
    Ok((
        HyperCube::from_samples(header.dims, data)?,
        header.interleave,
    ))
}

/// Linearly rescales a band plane to 8-bit grey values.
///
/// A constant plane maps to mid-grey so the output is still a valid image.
pub fn plane_to_gray(plane: &[f64]) -> Vec<u8> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in plane {
        min = min.min(v);
        max = max.max(v);
    }
    if plane.is_empty() || !min.is_finite() || !max.is_finite() {
        return vec![0; plane.len()];
    }
    let range = max - min;
    if range <= 0.0 {
        return vec![128; plane.len()];
    }
    plane
        .iter()
        .map(|&v| (((v - min) / range) * 255.0).round().clamp(0.0, 255.0) as u8)
        .collect()
}

/// Writes one spectral band of a cube as a binary PGM file.
pub fn write_band_pgm<P: AsRef<Path>>(cube: &HyperCube, band: usize, path: P) -> Result<()> {
    let plane = cube.band_plane(band)?;
    let gray = plane_to_gray(&plane);
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P5\n{} {}\n255\n", cube.width(), cube.height())?;
    w.write_all(&gray)?;
    w.flush()?;
    Ok(())
}

/// Writes an RGB image as a binary PPM file.
pub fn write_ppm<P: AsRef<Path>>(image: &RgbImage, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(w, "P6\n{} {}\n255\n", image.width(), image.height())?;
    w.write_all(image.raw())?;
    w.flush()?;
    Ok(())
}

/// Reads a binary PPM file back into an [`RgbImage`] (used by tests that
/// verify the example binaries produce well-formed output).
pub fn read_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage> {
    let mut bytes = Vec::new();
    BufReader::new(std::fs::File::open(path)?).read_to_end(&mut bytes)?;
    parse_ppm(&bytes)
}

fn parse_ppm(bytes: &[u8]) -> Result<RgbImage> {
    let bad = |msg: &str| HsiError::InvalidConfig(format!("malformed PPM: {msg}"));
    let mut pos = 0usize;
    let mut next_token = |bytes: &[u8]| -> Result<String> {
        // Skip whitespace and comments.
        while pos < bytes.len() {
            if bytes[pos].is_ascii_whitespace() {
                pos += 1;
            } else if bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("unexpected end of header"));
        }
        // A lossy conversion here would silently mangle a corrupt header
        // token into U+FFFD and then fail later with a misleading "bad
        // width"-style message; report the real defect instead.
        String::from_utf8(bytes[start..pos].to_vec()).map_err(|_| bad("non-UTF-8 header token"))
    };

    if next_token(bytes)? != "P6" {
        return Err(bad("missing P6 magic"));
    }
    let width: usize = next_token(bytes)?.parse().map_err(|_| bad("bad width"))?;
    let height: usize = next_token(bytes)?.parse().map_err(|_| bad("bad height"))?;
    let maxval: usize = next_token(bytes)?.parse().map_err(|_| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only maxval 255 supported"));
    }
    // Exactly one whitespace byte separates the header from pixel data.
    pos += 1;
    let expected = width * height * 3;
    if bytes.len() < pos + expected {
        return Err(bad("truncated pixel data"));
    }
    RgbImage::from_raw(width, height, bytes[pos..pos + expected].to_vec())
}

/// Writes a cube to the binary `.hsc` container.
///
/// Layout: magic, three little-endian u64 dimensions, then all samples as
/// little-endian f64 in BIP order.
pub fn write_cube<P: AsRef<Path>>(cube: &HyperCube, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(HSC_MAGIC)?;
    w.write_all(&(cube.width() as u64).to_le_bytes())?;
    w.write_all(&(cube.height() as u64).to_le_bytes())?;
    w.write_all(&(cube.bands() as u64).to_le_bytes())?;
    for &s in cube.samples() {
        w.write_all(&s.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a cube from the binary `.hsc` container.
pub fn read_cube<P: AsRef<Path>>(path: P) -> Result<HyperCube> {
    let file = std::fs::File::open(path)?;
    let mut r = BufReader::new(file);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != HSC_MAGIC {
        return Err(HsiError::InvalidConfig("not an HSC cube file".to_string()));
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut BufReader<std::fs::File>| -> Result<u64> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let width = read_u64(&mut r)? as usize;
    let height = read_u64(&mut r)? as usize;
    let bands = read_u64(&mut r)? as usize;
    let dims = CubeDims::new(width, height, bands);
    let mut data = Vec::with_capacity(dims.samples());
    let mut f64buf = [0u8; 8];
    for _ in 0..dims.samples() {
        r.read_exact(&mut f64buf)?;
        data.push(f64::from_le_bytes(f64buf));
    }
    HyperCube::from_samples(dims, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SceneConfig, SceneGenerator};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hsi_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn plane_to_gray_scales_to_full_range() {
        let gray = plane_to_gray(&[0.0, 5.0, 10.0]);
        assert_eq!(gray, vec![0, 128, 255]);
    }

    #[test]
    fn plane_to_gray_constant_plane_is_midgray() {
        assert_eq!(plane_to_gray(&[3.3; 4]), vec![128; 4]);
    }

    #[test]
    fn plane_to_gray_empty_is_empty() {
        assert!(plane_to_gray(&[]).is_empty());
    }

    #[test]
    fn ppm_round_trip_preserves_pixels() {
        let mut img = RgbImage::black(7, 5);
        for y in 0..5 {
            for x in 0..7 {
                img.set(x, y, [(x * 30) as u8, (y * 40) as u8, ((x + y) * 10) as u8])
                    .unwrap();
            }
        }
        let path = temp_path("roundtrip.ppm");
        write_ppm(&img, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(img, back);
    }

    #[test]
    fn parse_ppm_rejects_garbage() {
        assert!(parse_ppm(b"not an image").is_err());
        assert!(parse_ppm(b"P6\n2 2\n255\n\x00").is_err()); // truncated
        assert!(parse_ppm(b"P6\n2 2\n65535\n").is_err()); // unsupported depth
    }

    #[test]
    fn parse_ppm_reports_non_utf8_header_instead_of_mangling_it() {
        // A corrupt width token must surface as a header error, not be
        // lossily replaced with U+FFFD and misreported downstream.
        let err = parse_ppm(b"P6\n\xff\xfe 2\n255\n").unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("non-UTF-8 header token"),
            "unexpected error: {text}"
        );
    }

    #[test]
    fn pgm_writer_produces_valid_header_and_size() {
        let cube = SceneGenerator::new(SceneConfig::small(2))
            .unwrap()
            .generate();
        let path = temp_path("band.pgm");
        write_band_pgm(&cube, 3, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(bytes.starts_with(b"P5\n32 32\n255\n"));
        assert_eq!(bytes.len(), "P5\n32 32\n255\n".len() + 32 * 32);
    }

    #[test]
    fn pgm_writer_rejects_bad_band() {
        let cube = SceneGenerator::new(SceneConfig::small(2))
            .unwrap()
            .generate();
        assert!(write_band_pgm(&cube, 99, temp_path("never.pgm")).is_err());
    }

    #[test]
    fn cube_container_round_trip() {
        let cube = SceneGenerator::new(SceneConfig::small(4))
            .unwrap()
            .generate();
        let path = temp_path("cube.hsc");
        write_cube(&cube, &path).unwrap();
        let back = read_cube(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(cube, back);
    }

    #[test]
    fn interleaved_files_round_trip_in_every_order() {
        let cube = SceneGenerator::new(SceneConfig::small(6))
            .unwrap()
            .generate();
        for interleave in Interleave::ALL {
            let path = temp_path(&format!("cube_{}.hsif", interleave.label()));
            write_cube_as(&cube, interleave, &path).unwrap();
            let expected = CUBE_FILE_HEADER_LEN + cube.byte_size();
            assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, expected);
            let (back, read_interleave) = read_cube_file(&path).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(read_interleave, interleave);
            assert_eq!(back, cube, "{} round trip", interleave.label());
        }
    }

    #[test]
    fn interleave_offsets_are_a_bijection() {
        let dims = CubeDims::new(3, 4, 5);
        for interleave in Interleave::ALL {
            let mut seen = vec![false; dims.samples()];
            for index in 0..dims.samples() {
                let off = interleave_to_bip_offset(dims, interleave, index);
                assert!(
                    !seen[off],
                    "{} maps two samples to {off}",
                    interleave.label()
                );
                seen[off] = true;
            }
        }
    }

    #[test]
    fn header_parse_rejects_corrupt_headers() {
        let good = CubeFileHeader::new(CubeDims::new(2, 3, 4), Interleave::Bil);
        let encoded = good.encode();
        assert_eq!(CubeFileHeader::parse(&encoded).unwrap(), good);

        assert!(CubeFileHeader::parse(&encoded[..10]).is_err(), "truncated");
        let mut bad_magic = encoded;
        bad_magic[0] = b'X';
        assert!(CubeFileHeader::parse(&bad_magic).is_err());
        let mut bad_version = encoded;
        bad_version[4] = 99;
        assert!(CubeFileHeader::parse(&bad_version).is_err());
        let mut bad_interleave = encoded;
        bad_interleave[5] = 7;
        assert!(CubeFileHeader::parse(&bad_interleave).is_err());
        let zero_dim = CubeFileHeader::new(CubeDims::new(2, 0, 4), Interleave::Bip).encode();
        assert!(CubeFileHeader::parse(&zero_dim).is_err());
        // Implausible and overflowing dimensions are rejected at parse time
        // (a consumer trusting them would attempt the allocation).
        let huge = CubeFileHeader::new(CubeDims::new(1 << 30, 1 << 30, 100), Interleave::Bip);
        assert!(CubeFileHeader::parse(&huge.encode()).is_err());
        let mut wrapping = encoded;
        for off in [6, 14] {
            wrapping[off..off + 8].copy_from_slice(&(1u64 << 32).to_le_bytes());
        }
        assert!(CubeFileHeader::parse(&wrapping).is_err(), "wrapped product");
    }

    #[test]
    fn read_cube_file_rejects_truncated_payload() {
        let cube = SceneGenerator::new(SceneConfig::small(8))
            .unwrap()
            .generate();
        let path = temp_path("truncated.hsif");
        write_cube_as(&cube, Interleave::Bsq, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 9);
        std::fs::write(&path, &bytes).unwrap();
        let result = read_cube_file(&path);
        std::fs::remove_file(&path).ok();
        assert!(matches!(result, Err(HsiError::ShapeMismatch { .. })));
    }

    #[test]
    fn cube_reader_rejects_wrong_magic() {
        let path = temp_path("bad.hsc");
        std::fs::write(&path, b"XXXXGARBAGE").unwrap();
        let result = read_cube(&path);
        std::fs::remove_file(&path).ok();
        assert!(result.is_err());
    }
}
