//! Sub-cube decomposition and granularity control.
//!
//! The distributed algorithm of the paper partitions the hyper-spectral cube
//! into sub-cubes that the manager hands to workers ("Each sub-problem is a
//! sub-cube of the hyper-spectral image set").  Figure 5 studies the effect
//! of decomposing into more sub-cubes than there are workers
//! (`#sub-cubes = #proc`, `#proc × 2`, `#proc × 3`): over-decomposition lets
//! a worker overlap the request for its next sub-problem with computation on
//! the current one, but too-fine granularity makes communication dominate.
//! The paper notes the 320×320×105 cube stops benefiting past ~32 sub-cubes.
//!
//! Sub-cubes are horizontal row bands of the image: contiguous rows keep the
//! BIP samples of a sub-cube contiguous in memory, which both the real
//! runtime (cheap copies) and the cost model (message size = contiguous byte
//! range) rely on.

use crate::cube::{CubeDims, HyperCube};
use crate::view::CubeView;
use crate::{HsiError, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How many sub-cubes to create for a given worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GranularityPolicy {
    /// Exactly one sub-cube per worker (`#sub-cube = #proc` in Figure 5).
    OnePerWorker,
    /// `multiplier` sub-cubes per worker (`#proc × 2`, `#proc × 3`, …).
    PerWorkerMultiple(
        /// Sub-cubes per worker.
        usize,
    ),
    /// A fixed total number of sub-cubes regardless of worker count.
    FixedTotal(
        /// Total number of sub-cubes.
        usize,
    ),
}

impl GranularityPolicy {
    /// The number of sub-cubes this policy produces for `workers` workers.
    pub fn sub_cube_count(&self, workers: usize) -> usize {
        let count = match self {
            GranularityPolicy::OnePerWorker => workers,
            GranularityPolicy::PerWorkerMultiple(m) => workers * m.max(&1),
            GranularityPolicy::FixedTotal(n) => *n,
        };
        count.max(1)
    }
}

/// Description of one sub-cube: a contiguous range of image rows.
///
/// The spec is what travels in control messages; the pixel payload itself is
/// extracted lazily with [`SubCubeSpec::extract`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubCubeSpec {
    /// Stable identifier (0-based, in row order).
    pub id: usize,
    /// First image row covered by this sub-cube.
    pub row_start: usize,
    /// Number of rows covered.
    pub rows: usize,
    /// Image width (columns) — every sub-cube spans the full width.
    pub width: usize,
    /// Number of spectral bands.
    pub bands: usize,
}

impl SubCubeSpec {
    /// Number of pixels in the sub-cube.
    pub fn pixels(&self) -> usize {
        self.rows * self.width
    }

    /// Number of `f64` samples in the sub-cube payload.
    pub fn samples(&self) -> usize {
        self.pixels() * self.bands
    }

    /// Payload size in bytes when shipped to a worker (used by the
    /// communication cost model).
    pub fn payload_bytes(&self) -> usize {
        self.samples() * std::mem::size_of::<f64>()
    }

    /// Extracts the pixel payload from the full cube as an owned deep copy.
    ///
    /// This is the pre-view code path, kept for true process/serialization
    /// boundaries and as the byte-identity reference the view property tests
    /// compare against.  The copy is charged to the clone ledger
    /// ([`crate::view::cloned_bytes_total`]); the in-process message plane
    /// uses [`SubCubeSpec::view`] instead, which copies nothing.
    pub fn extract(&self, cube: &HyperCube) -> Result<SubCube> {
        crate::view::charge_cloned_bytes(self.payload_bytes());
        let window = cube.window(0, self.row_start, self.width, self.rows)?;
        Ok(SubCube {
            spec: *self,
            data: window,
        })
    }

    /// A zero-copy [`CubeView`] of this sub-cube's window over the shared
    /// full cube: the payload the message plane ships instead of an owned
    /// [`SubCube`].
    pub fn view(&self, cube: &Arc<HyperCube>) -> Result<CubeView> {
        if self.bands != cube.bands() || self.width != cube.width() {
            return Err(HsiError::ShapeMismatch {
                expected: self.width * self.bands,
                actual: cube.width() * cube.bands(),
            });
        }
        CubeView::window(Arc::clone(cube), 0, self.row_start, self.width, self.rows)
    }
}

/// A sub-cube with its payload: the unit of work a worker receives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubCube {
    /// The spec describing where this sub-cube sits in the full image.
    pub spec: SubCubeSpec,
    /// The pixel payload.
    pub data: HyperCube,
}

impl SubCube {
    /// Writes this sub-cube's payload back into the full-size `target` cube
    /// (manager-side reassembly after step 7/8).
    pub fn blit_into(&self, target: &mut HyperCube) -> Result<()> {
        target.blit(0, self.spec.row_start, &self.data)
    }
}

/// Partitions a cube into `count` sub-cubes of (nearly) equal row counts.
///
/// Rows are distributed as evenly as possible: the first `height % count`
/// sub-cubes get one extra row.  When `count > height` the excess sub-cubes
/// are simply not produced (a sub-cube must contain at least one row), so the
/// returned vector may be shorter than requested — callers that care (the
/// granularity bench) check `len()`.
pub fn partition_rows(dims: CubeDims, count: usize) -> Result<Vec<SubCubeSpec>> {
    if dims.height == 0 || dims.width == 0 || dims.bands == 0 {
        return Err(HsiError::InvalidConfig(
            "cannot partition an empty cube".to_string(),
        ));
    }
    let count = count.max(1).min(dims.height);
    let base = dims.height / count;
    let extra = dims.height % count;
    let mut specs = Vec::with_capacity(count);
    let mut row = 0;
    for id in 0..count {
        let rows = base + usize::from(id < extra);
        specs.push(SubCubeSpec {
            id,
            row_start: row,
            rows,
            width: dims.width,
            bands: dims.bands,
        });
        row += rows;
    }
    debug_assert_eq!(row, dims.height);
    Ok(specs)
}

/// Partitions a shared cube into `count` zero-copy row-band views — the
/// view-based message plane's counterpart of [`partition_rows`].  The specs
/// and views are index-aligned (`views[i]` is `specs[i]`'s window).
pub fn partition_views(cube: &Arc<HyperCube>, count: usize) -> Result<Vec<CubeView>> {
    partition_rows(cube.dims(), count)?
        .iter()
        .map(|spec| spec.view(cube))
        .collect()
}

/// Convenience: partition according to a [`GranularityPolicy`].
pub fn partition_for_workers(
    dims: CubeDims,
    workers: usize,
    policy: GranularityPolicy,
) -> Result<Vec<SubCubeSpec>> {
    partition_rows(dims, policy.sub_cube_count(workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SceneConfig, SceneGenerator};

    #[test]
    fn policy_counts() {
        assert_eq!(GranularityPolicy::OnePerWorker.sub_cube_count(8), 8);
        assert_eq!(
            GranularityPolicy::PerWorkerMultiple(3).sub_cube_count(8),
            24
        );
        assert_eq!(GranularityPolicy::FixedTotal(32).sub_cube_count(8), 32);
        assert_eq!(GranularityPolicy::PerWorkerMultiple(0).sub_cube_count(8), 8);
        assert_eq!(GranularityPolicy::FixedTotal(0).sub_cube_count(8), 1);
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        let dims = CubeDims::new(10, 37, 4);
        let specs = partition_rows(dims, 5).unwrap();
        assert_eq!(specs.len(), 5);
        let mut covered = vec![0usize; 37];
        for s in &specs {
            for c in &mut covered[s.row_start..s.row_start + s.rows] {
                *c += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }

    #[test]
    fn partition_is_balanced() {
        let dims = CubeDims::new(10, 100, 4);
        let specs = partition_rows(dims, 7).unwrap();
        let min = specs.iter().map(|s| s.rows).min().unwrap();
        let max = specs.iter().map(|s| s.rows).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn partition_caps_at_row_count() {
        let dims = CubeDims::new(5, 3, 2);
        let specs = partition_rows(dims, 10).unwrap();
        assert_eq!(specs.len(), 3);
        assert!(specs.iter().all(|s| s.rows == 1));
    }

    #[test]
    fn partition_rejects_empty_cube() {
        assert!(partition_rows(CubeDims::new(0, 5, 3), 2).is_err());
        assert!(partition_rows(CubeDims::new(5, 0, 3), 2).is_err());
        assert!(partition_rows(CubeDims::new(5, 5, 0), 2).is_err());
    }

    #[test]
    fn spec_sizes_are_consistent() {
        let dims = CubeDims::new(320, 320, 105);
        let specs = partition_rows(dims, 16).unwrap();
        let total_samples: usize = specs.iter().map(|s| s.samples()).sum();
        assert_eq!(total_samples, dims.samples());
        assert_eq!(specs[0].payload_bytes(), specs[0].samples() * 8);
    }

    #[test]
    fn extract_and_blit_reassemble_the_original() {
        let gen = SceneGenerator::new(SceneConfig::small(9)).unwrap();
        let cube = gen.generate();
        let specs = partition_rows(cube.dims(), 5).unwrap();
        let mut rebuilt = HyperCube::zeros(cube.dims());
        for spec in &specs {
            let sub = spec.extract(&cube).unwrap();
            assert_eq!(sub.data.height(), spec.rows);
            sub.blit_into(&mut rebuilt).unwrap();
        }
        assert_eq!(rebuilt, cube);
    }

    #[test]
    fn views_read_byte_identical_to_extracted_sub_cubes() {
        let gen = SceneGenerator::new(SceneConfig::small(9)).unwrap();
        let cube = Arc::new(gen.generate());
        let specs = partition_rows(cube.dims(), 7).unwrap();
        let views = partition_views(&cube, 7).unwrap();
        assert_eq!(specs.len(), views.len());
        for (spec, view) in specs.iter().zip(&views) {
            let owned = spec.extract(&cube).unwrap();
            assert_eq!(view.row_start(), spec.row_start);
            assert_eq!(view.dims(), owned.data.dims());
            assert_eq!(view.materialize(), owned.data);
            assert_eq!(view.pixel_vectors(), owned.data.pixel_vectors());
        }
    }

    #[test]
    fn view_rejects_mismatched_storage() {
        let spec = SubCubeSpec {
            id: 0,
            row_start: 0,
            rows: 2,
            width: 4,
            bands: 3,
        };
        let other = Arc::new(HyperCube::zeros(CubeDims::new(4, 4, 2)));
        assert!(spec.view(&other).is_err());
        let narrow = Arc::new(HyperCube::zeros(CubeDims::new(3, 4, 3)));
        assert!(spec.view(&narrow).is_err());
    }

    #[test]
    fn partition_for_workers_matches_policy() {
        let dims = CubeDims::new(64, 64, 8);
        let specs =
            partition_for_workers(dims, 4, GranularityPolicy::PerWorkerMultiple(2)).unwrap();
        assert_eq!(specs.len(), 8);
    }

    #[test]
    fn paper_granularity_tail_off_point_is_representable() {
        // The paper says performance tails off past 32 sub-cubes for the
        // 320x320x105 cube; make sure that decomposition exists and is valid.
        let dims = CubeDims::paper_eval();
        let specs = partition_rows(dims, 32).unwrap();
        assert_eq!(specs.len(), 32);
        assert_eq!(specs.iter().map(|s| s.rows).sum::<usize>(), 320);
    }
}
