//! In-memory hyper-spectral image cubes.
//!
//! A cube is `width x height` spatial pixels by `bands` spectral channels.
//! Storage is band-interleaved by pixel (BIP): all bands of pixel (0,0), then
//! all bands of pixel (1,0), and so on in row-major spatial order.  BIP makes
//! the per-pixel operations of the PCT pipeline (spectral angle, centring,
//! transformation) contiguous memory walks, which is the access pattern the
//! hpc-parallel guides recommend optimising for.

use crate::{HsiError, Result};
use linalg::Vector;
use serde::{Deserialize, Serialize};

/// Spatial and spectral dimensions of a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeDims {
    /// Spatial width in pixels (columns).
    pub width: usize,
    /// Spatial height in pixels (rows).
    pub height: usize,
    /// Number of spectral bands.
    pub bands: usize,
}

impl CubeDims {
    /// Creates a dimension descriptor.
    pub fn new(width: usize, height: usize, bands: usize) -> Self {
        Self {
            width,
            height,
            bands,
        }
    }

    /// Number of spatial pixels.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Total number of samples (`pixels * bands`).
    pub fn samples(&self) -> usize {
        self.pixels() * self.bands
    }

    /// In-memory payload size of a cube with these dimensions
    /// (`samples * size_of::<f64>()`) — the one place this arithmetic
    /// lives; routing and transfer-cost models consult it.
    pub fn byte_size(&self) -> usize {
        self.samples() * std::mem::size_of::<f64>()
    }

    /// The cube size used throughout the paper's evaluation: 320×320×105
    /// ("the initial cube size was 320x320x105").
    pub fn paper_eval() -> Self {
        Self::new(320, 320, 105)
    }

    /// The full HYDICE acquisition used for the qualitative result
    /// (Figure 3): 320×320 spatial, 210 spectral bands.
    pub fn paper_full() -> Self {
        Self::new(320, 320, 210)
    }
}

/// A hyper-spectral image cube with BIP storage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperCube {
    dims: CubeDims,
    /// BIP samples: `data[(y * width + x) * bands + b]`.
    data: Vec<f64>,
}

impl HyperCube {
    /// Creates a zero-filled cube.
    pub fn zeros(dims: CubeDims) -> Self {
        Self {
            data: vec![0.0; dims.samples()],
            dims,
        }
    }

    /// Creates a cube from an existing BIP sample buffer.
    pub fn from_samples(dims: CubeDims, data: Vec<f64>) -> Result<Self> {
        if data.len() != dims.samples() {
            return Err(HsiError::ShapeMismatch {
                expected: dims.samples(),
                actual: data.len(),
            });
        }
        Ok(Self { dims, data })
    }

    /// Cube dimensions.
    pub fn dims(&self) -> CubeDims {
        self.dims
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.dims.width
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.dims.height
    }

    /// Number of spectral bands.
    pub fn bands(&self) -> usize {
        self.dims.bands
    }

    /// Number of spatial pixels.
    pub fn pixels(&self) -> usize {
        self.dims.pixels()
    }

    /// Immutable view of the raw BIP samples.
    pub fn samples(&self) -> &[f64] {
        &self.data
    }

    /// Flat offset of the first sample of pixel `(x, y)`.
    fn pixel_offset(&self, x: usize, y: usize) -> Result<usize> {
        if x >= self.dims.width {
            return Err(HsiError::OutOfBounds {
                what: "x",
                index: x,
                bound: self.dims.width,
            });
        }
        if y >= self.dims.height {
            return Err(HsiError::OutOfBounds {
                what: "y",
                index: y,
                bound: self.dims.height,
            });
        }
        Ok((y * self.dims.width + x) * self.dims.bands)
    }

    /// Returns the spectral samples of pixel `(x, y)` as a slice.
    pub fn pixel(&self, x: usize, y: usize) -> Result<&[f64]> {
        let off = self.pixel_offset(x, y)?;
        Ok(&self.data[off..off + self.dims.bands])
    }

    /// Returns pixel `(x, y)` as an owned [`Vector`] (the pixel-vector type
    /// the PCT pipeline operates on).
    pub fn pixel_vector(&self, x: usize, y: usize) -> Result<Vector> {
        Ok(Vector::from(self.pixel(x, y)?))
    }

    /// Overwrites the spectral samples of pixel `(x, y)`.
    pub fn set_pixel(&mut self, x: usize, y: usize, values: &[f64]) -> Result<()> {
        if values.len() != self.dims.bands {
            return Err(HsiError::ShapeMismatch {
                expected: self.dims.bands,
                actual: values.len(),
            });
        }
        let off = self.pixel_offset(x, y)?;
        self.data[off..off + self.dims.bands].copy_from_slice(values);
        Ok(())
    }

    /// Reads one sample.
    pub fn sample(&self, x: usize, y: usize, band: usize) -> Result<f64> {
        if band >= self.dims.bands {
            return Err(HsiError::OutOfBounds {
                what: "band",
                index: band,
                bound: self.dims.bands,
            });
        }
        let off = self.pixel_offset(x, y)?;
        Ok(self.data[off + band])
    }

    /// Extracts one spectral band as a `width * height` plane in row-major
    /// order (used to render Figure 2-style single-band images).
    pub fn band_plane(&self, band: usize) -> Result<Vec<f64>> {
        if band >= self.dims.bands {
            return Err(HsiError::OutOfBounds {
                what: "band",
                index: band,
                bound: self.dims.bands,
            });
        }
        let mut plane = Vec::with_capacity(self.pixels());
        for p in 0..self.pixels() {
            plane.push(self.data[p * self.dims.bands + band]);
        }
        Ok(plane)
    }

    /// Iterates over all pixel vectors in row-major spatial order.
    pub fn iter_pixels(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dims.bands.max(1))
    }

    /// Collects every pixel as an owned [`Vector`]; convenient for the
    /// sequential reference implementation and for tests.
    pub fn pixel_vectors(&self) -> Vec<Vector> {
        self.iter_pixels().map(Vector::from).collect()
    }

    /// Extracts a spatial window `[x0, x0+w) x [y0, y0+h)` as a new cube with
    /// the same band count.  This is the manager's sub-cube extraction.
    pub fn window(&self, x0: usize, y0: usize, w: usize, h: usize) -> Result<HyperCube> {
        if x0 + w > self.dims.width {
            return Err(HsiError::OutOfBounds {
                what: "window x extent",
                index: x0 + w,
                bound: self.dims.width,
            });
        }
        if y0 + h > self.dims.height {
            return Err(HsiError::OutOfBounds {
                what: "window y extent",
                index: y0 + h,
                bound: self.dims.height,
            });
        }
        let dims = CubeDims::new(w, h, self.dims.bands);
        let mut out = HyperCube::zeros(dims);
        for dy in 0..h {
            let src_off = ((y0 + dy) * self.dims.width + x0) * self.dims.bands;
            let dst_off = dy * w * self.dims.bands;
            let len = w * self.dims.bands;
            out.data[dst_off..dst_off + len].copy_from_slice(&self.data[src_off..src_off + len]);
        }
        Ok(out)
    }

    /// Writes a smaller cube back into this cube at spatial offset
    /// `(x0, y0)`; the inverse of [`HyperCube::window`], used when the
    /// manager reassembles transformed sub-cubes in step 7.
    pub fn blit(&mut self, x0: usize, y0: usize, src: &HyperCube) -> Result<()> {
        if src.bands() != self.bands() {
            return Err(HsiError::ShapeMismatch {
                expected: self.bands(),
                actual: src.bands(),
            });
        }
        if x0 + src.width() > self.dims.width {
            return Err(HsiError::OutOfBounds {
                what: "blit x extent",
                index: x0 + src.width(),
                bound: self.dims.width,
            });
        }
        if y0 + src.height() > self.dims.height {
            return Err(HsiError::OutOfBounds {
                what: "blit y extent",
                index: y0 + src.height(),
                bound: self.dims.height,
            });
        }
        for dy in 0..src.height() {
            let dst_off = ((y0 + dy) * self.dims.width + x0) * self.dims.bands;
            let src_off = dy * src.width() * src.bands();
            let len = src.width() * src.bands();
            self.data[dst_off..dst_off + len].copy_from_slice(&src.data[src_off..src_off + len]);
        }
        Ok(())
    }

    /// Keeps only the first `k` bands of every pixel, returning a new cube.
    /// Used after the PCT transform to retain the leading principal
    /// components for colour mapping (step 8 uses the first three).
    pub fn truncate_bands(&self, k: usize) -> HyperCube {
        let k = k.min(self.dims.bands);
        let dims = CubeDims::new(self.dims.width, self.dims.height, k);
        let mut data = Vec::with_capacity(dims.samples());
        for pixel in self.iter_pixels() {
            data.extend_from_slice(&pixel[..k]);
        }
        HyperCube { dims, data }
    }

    /// Approximate in-memory size in bytes (used by the communication cost
    /// model when estimating sub-problem transfer times).
    pub fn byte_size(&self) -> usize {
        self.dims.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cube() -> HyperCube {
        // 3x2 spatial, 4 bands; sample value encodes (x, y, band).
        let dims = CubeDims::new(3, 2, 4);
        let mut cube = HyperCube::zeros(dims);
        for y in 0..2 {
            for x in 0..3 {
                let v: Vec<f64> = (0..4).map(|b| (x * 100 + y * 10 + b) as f64).collect();
                cube.set_pixel(x, y, &v).unwrap();
            }
        }
        cube
    }

    #[test]
    fn dims_arithmetic() {
        let d = CubeDims::new(320, 320, 105);
        assert_eq!(d.pixels(), 102_400);
        assert_eq!(d.samples(), 10_752_000);
        assert_eq!(CubeDims::paper_eval(), d);
        assert_eq!(CubeDims::paper_full().bands, 210);
    }

    #[test]
    fn from_samples_validates_length() {
        let dims = CubeDims::new(2, 2, 3);
        assert!(HyperCube::from_samples(dims, vec![0.0; 11]).is_err());
        assert!(HyperCube::from_samples(dims, vec![0.0; 12]).is_ok());
    }

    #[test]
    fn pixel_round_trip() {
        let cube = small_cube();
        assert_eq!(cube.pixel(2, 1).unwrap(), &[210.0, 211.0, 212.0, 213.0]);
        assert_eq!(cube.sample(1, 0, 3).unwrap(), 103.0);
    }

    #[test]
    fn pixel_out_of_bounds_errors() {
        let cube = small_cube();
        assert!(cube.pixel(3, 0).is_err());
        assert!(cube.pixel(0, 2).is_err());
        assert!(cube.sample(0, 0, 4).is_err());
    }

    #[test]
    fn set_pixel_rejects_wrong_band_count() {
        let mut cube = small_cube();
        assert!(cube.set_pixel(0, 0, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn band_plane_is_row_major() {
        let cube = small_cube();
        let plane = cube.band_plane(1).unwrap();
        assert_eq!(plane, vec![1.0, 101.0, 201.0, 11.0, 111.0, 211.0]);
    }

    #[test]
    fn band_plane_out_of_range_errors() {
        assert!(small_cube().band_plane(4).is_err());
    }

    #[test]
    fn window_extracts_expected_pixels() {
        let cube = small_cube();
        let win = cube.window(1, 0, 2, 2).unwrap();
        assert_eq!(win.dims(), CubeDims::new(2, 2, 4));
        assert_eq!(win.pixel(0, 0).unwrap(), cube.pixel(1, 0).unwrap());
        assert_eq!(win.pixel(1, 1).unwrap(), cube.pixel(2, 1).unwrap());
    }

    #[test]
    fn window_out_of_bounds_errors() {
        let cube = small_cube();
        assert!(cube.window(2, 0, 2, 1).is_err());
        assert!(cube.window(0, 1, 1, 2).is_err());
    }

    #[test]
    fn blit_is_inverse_of_window() {
        let cube = small_cube();
        let win = cube.window(1, 0, 2, 2).unwrap();
        let mut target = HyperCube::zeros(cube.dims());
        target.blit(1, 0, &win).unwrap();
        assert_eq!(target.pixel(1, 0).unwrap(), cube.pixel(1, 0).unwrap());
        assert_eq!(target.pixel(2, 1).unwrap(), cube.pixel(2, 1).unwrap());
        // Pixels outside the blit stay zero.
        assert_eq!(target.pixel(0, 0).unwrap(), &[0.0; 4]);
    }

    #[test]
    fn blit_rejects_band_mismatch_and_overflow() {
        let mut cube = small_cube();
        let other = HyperCube::zeros(CubeDims::new(1, 1, 3));
        assert!(cube.blit(0, 0, &other).is_err());
        let big = HyperCube::zeros(CubeDims::new(4, 1, 4));
        assert!(cube.blit(0, 0, &big).is_err());
    }

    #[test]
    fn truncate_bands_keeps_leading_components() {
        let cube = small_cube();
        let t = cube.truncate_bands(2);
        assert_eq!(t.bands(), 2);
        assert_eq!(t.pixel(2, 1).unwrap(), &[210.0, 211.0]);
    }

    #[test]
    fn truncate_bands_saturates_at_band_count() {
        let cube = small_cube();
        assert_eq!(cube.truncate_bands(99).bands(), 4);
    }

    #[test]
    fn pixel_vectors_matches_iteration_order() {
        let cube = small_cube();
        let vs = cube.pixel_vectors();
        assert_eq!(vs.len(), 6);
        assert_eq!(vs[0].as_slice(), cube.pixel(0, 0).unwrap());
        assert_eq!(vs[5].as_slice(), cube.pixel(2, 1).unwrap());
    }

    #[test]
    fn byte_size_reflects_sample_count() {
        let cube = small_cube();
        assert_eq!(cube.byte_size(), 6 * 4 * 8);
    }
}
