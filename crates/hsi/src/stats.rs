//! Per-band statistics and image-quality metrics.
//!
//! These back two needs: the screening ablation bench (how does the spectral
//! screening threshold trade unique-set size against information retained)
//! and the integration tests that check the fused composite concentrates
//! variance into the leading principal components, which is the paper's
//! qualitative claim about Figure 3.

use crate::cube::HyperCube;
use crate::{HsiError, Result};
use serde::{Deserialize, Serialize};

/// Summary statistics of one spectral band.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandStats {
    /// Band index.
    pub band: usize,
    /// Minimum sample value.
    pub min: f64,
    /// Maximum sample value.
    pub max: f64,
    /// Mean sample value.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
}

/// Computes summary statistics for one band.
pub fn band_stats(cube: &HyperCube, band: usize) -> Result<BandStats> {
    let plane = cube.band_plane(band)?;
    if plane.is_empty() {
        return Err(HsiError::InvalidConfig("empty band plane".to_string()));
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in &plane {
        min = min.min(v);
        max = max.max(v);
    }
    let mean = linalg::reduce::mean(&plane).unwrap_or(0.0);
    let variance = linalg::reduce::variance(&plane).unwrap_or(0.0);
    Ok(BandStats {
        band,
        min,
        max,
        mean,
        variance,
    })
}

/// Computes statistics for every band.
pub fn all_band_stats(cube: &HyperCube) -> Result<Vec<BandStats>> {
    (0..cube.bands()).map(|b| band_stats(cube, b)).collect()
}

/// Per-band variances of a cube.
pub fn band_variances(cube: &HyperCube) -> Result<Vec<f64>> {
    Ok(all_band_stats(cube)?
        .into_iter()
        .map(|s| s.variance)
        .collect())
}

/// Fraction of total per-band variance carried by the first `k` bands.
///
/// Applied to a PCT-transformed cube this is the "energy compaction" measure:
/// the paper's motivation for PCT is exactly that the leading components
/// carry nearly all the variance, and the integration tests assert this
/// exceeds 95 % for `k = 3` on synthetic scenes.
pub fn leading_variance_fraction(cube: &HyperCube, k: usize) -> Result<f64> {
    let variances = band_variances(cube)?;
    let total: f64 = variances.iter().sum();
    if total <= 0.0 {
        return Ok(0.0);
    }
    let leading: f64 = variances.iter().take(k).sum();
    Ok(leading / total)
}

/// Shannon entropy (bits) of an 8-bit quantisation of a band plane; a crude
/// but monotone proxy for information content used in the screening ablation.
pub fn band_entropy(cube: &HyperCube, band: usize) -> Result<f64> {
    let plane = cube.band_plane(band)?;
    let gray = crate::io::plane_to_gray(&plane);
    let mut histogram = [0u64; 256];
    for &g in &gray {
        histogram[g as usize] += 1;
    }
    let n = gray.len() as f64;
    if n == 0.0 {
        return Ok(0.0);
    }
    let mut entropy = 0.0;
    for &count in &histogram {
        if count > 0 {
            let p = count as f64 / n;
            entropy -= p * p.log2();
        }
    }
    Ok(entropy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeDims;
    use crate::synthetic::{SceneConfig, SceneGenerator};

    #[test]
    fn stats_of_constant_band_are_degenerate() {
        let mut cube = HyperCube::zeros(CubeDims::new(4, 4, 2));
        for y in 0..4 {
            for x in 0..4 {
                cube.set_pixel(x, y, &[7.0, 3.0]).unwrap();
            }
        }
        let s = band_stats(&cube, 0).unwrap();
        assert_eq!((s.min, s.max, s.mean, s.variance), (7.0, 7.0, 7.0, 0.0));
    }

    #[test]
    fn band_stats_out_of_range_errors() {
        let cube = HyperCube::zeros(CubeDims::new(2, 2, 2));
        assert!(band_stats(&cube, 5).is_err());
    }

    #[test]
    fn all_band_stats_covers_every_band() {
        let cube = SceneGenerator::new(SceneConfig::small(1))
            .unwrap()
            .generate();
        let stats = all_band_stats(&cube).unwrap();
        assert_eq!(stats.len(), cube.bands());
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(s.band, i);
            assert!(s.max >= s.min);
            assert!(s.variance >= 0.0);
        }
    }

    #[test]
    fn leading_variance_fraction_is_monotone_in_k() {
        let cube = SceneGenerator::new(SceneConfig::small(1))
            .unwrap()
            .generate();
        let f1 = leading_variance_fraction(&cube, 1).unwrap();
        let f3 = leading_variance_fraction(&cube, 3).unwrap();
        let fall = leading_variance_fraction(&cube, cube.bands()).unwrap();
        assert!(f1 <= f3 + 1e-12);
        assert!((fall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leading_variance_fraction_of_zero_cube_is_zero() {
        let cube = HyperCube::zeros(CubeDims::new(3, 3, 3));
        assert_eq!(leading_variance_fraction(&cube, 2).unwrap(), 0.0);
    }

    #[test]
    fn entropy_of_constant_band_is_zero() {
        let cube = HyperCube::zeros(CubeDims::new(4, 4, 1));
        assert_eq!(band_entropy(&cube, 0).unwrap(), 0.0);
    }

    #[test]
    fn entropy_of_textured_scene_is_positive() {
        let cube = SceneGenerator::new(SceneConfig::small(1))
            .unwrap()
            .generate();
        assert!(band_entropy(&cube, 2).unwrap() > 1.0);
    }
}
