//! Metrics: named counters, gauges and fixed-bucket latency histograms.
//!
//! The hot path is lock-free: each instrument hands out an `Arc` of
//! atomics, so recording a value is a handful of relaxed atomic ops.  The
//! registry's mutex is touched only on instrument *creation* (get-or-create
//! by name + labels) and on snapshot rendering.  Snapshots use the
//! [Prometheus exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/)
//! so a dump pastes straight into standard tooling.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default latency bucket upper edges, in seconds.  Chosen for a service
/// whose phases run microseconds-to-seconds: 100µs up to 10s, roughly
/// base-√10 spaced.
pub const DEFAULT_LATENCY_EDGES: &[f64] = &[
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, live workers).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket latency histogram.  Buckets hold *non-cumulative* counts
/// internally; the exporter accumulates them into Prometheus' cumulative
/// `le` form.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Arc<Vec<f64>>,
    /// One slot per edge plus a final +Inf slot.
    buckets: Arc<Vec<AtomicU64>>,
    /// Total observed time in nanoseconds.
    sum_nanos: Arc<AtomicU64>,
}

impl Histogram {
    pub(crate) fn new(edges: &[f64]) -> Self {
        let edges: Vec<f64> = edges.to_vec();
        let buckets = (0..edges.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            edges: Arc::new(edges),
            buckets: Arc::new(buckets),
            sum_nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        self.observe_seconds(d.as_secs_f64());
        self.sum_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn observe_seconds(&self, secs: f64) {
        // Values land in the first bucket whose edge is >= the value
        // (Prometheus `le` semantics); larger values land in +Inf.
        let idx = self
            .edges
            .iter()
            .position(|&edge| secs <= edge)
            .unwrap_or(self.edges.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed durations.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    /// Per-bucket (edge, non-cumulative count) pairs; the final entry uses
    /// `f64::INFINITY` as its edge.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.edges
            .iter()
            .copied()
            .chain(std::iter::once(f64::INFINITY))
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }

    /// Estimates the `q`-quantile (0.0..=1.0) in seconds by linear
    /// interpolation within the bucket that holds it, as Prometheus'
    /// `histogram_quantile` does.  Returns `None` with no observations.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut seen = 0u64;
        let mut lower = 0.0f64;
        for (edge, count) in self.buckets() {
            let next = seen + count;
            if (next as f64) >= rank && count > 0 {
                if edge.is_infinite() {
                    // Open-ended final bucket: report its lower edge.
                    return Some(lower);
                }
                let within = (rank - seen as f64) / count as f64;
                return Some(lower + (edge - lower) * within.clamp(0.0, 1.0));
            }
            seen = next;
            if edge.is_finite() {
                lower = edge;
            }
        }
        Some(lower)
    }
}

/// One registry entry: the instrument plus its identity.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Identity of one instrument: metric family name plus sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

/// A registry of named instruments.  Get-or-create is keyed by family name
/// and label set; the returned handles are `Arc`-backed and can be cached
/// by callers to keep the hot path off the registry mutex entirely.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: Mutex<BTreeMap<MetricKey, Instrument>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut pairs: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        pairs.sort();
        (name.to_string(), pairs)
    }

    /// Returns the counter `name{labels}`, creating it on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Returns the gauge `name{labels}`, creating it on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Returns the histogram `name{labels}` with [`DEFAULT_LATENCY_EDGES`],
    /// creating it on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with_edges(name, labels, DEFAULT_LATENCY_EDGES)
    }

    /// Returns the histogram `name{labels}` with explicit bucket edges,
    /// creating it on first use.  Edges must be sorted ascending.
    pub fn histogram_with_edges(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        edges: &[f64],
    ) -> Histogram {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(Self::key(name, labels))
            .or_insert_with(|| Instrument::Histogram(Histogram::new(edges)))
        {
            Instrument::Histogram(h) => h.clone(),
            other => panic!(
                "metric {name} already registered as a {}",
                other.type_name()
            ),
        }
    }

    /// Renders every instrument in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let map = self.instruments.lock().unwrap();
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for ((name, labels), instrument) in map.iter() {
            if last_family != Some(name.as_str()) {
                out.push_str(&format!("# TYPE {name} {}\n", instrument.type_name()));
                last_family = Some(name.as_str());
            }
            let label_text = render_labels(labels, &[]);
            match instrument {
                Instrument::Counter(c) => {
                    out.push_str(&format!("{name}{label_text} {}\n", c.get()));
                }
                Instrument::Gauge(g) => {
                    out.push_str(&format!("{name}{label_text} {}\n", g.get()));
                }
                Instrument::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (edge, count) in h.buckets() {
                        cumulative += count;
                        let le = if edge.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            trim_float(edge)
                        };
                        let bucket_labels = render_labels(labels, &[("le", &le)]);
                        out.push_str(&format!("{name}_bucket{bucket_labels} {cumulative}\n"));
                    }
                    out.push_str(&format!(
                        "{name}_sum{label_text} {}\n",
                        trim_float(h.sum().as_secs_f64())
                    ));
                    out.push_str(&format!("{name}_count{label_text} {cumulative}\n"));
                }
            }
        }
        out
    }
}

/// Renders `{k="v",...}` from stored labels plus extra pairs; empty label
/// sets render as nothing.
fn render_labels(stored: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if stored.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut parts: Vec<String> = stored.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    parts.extend(extra.iter().map(|(k, v)| format!("{k}=\"{v}\"")));
    format!("{{{}}}", parts.join(","))
}

/// Formats a float compactly (no trailing zeros, but always one decimal
/// form Prometheus accepts).
fn trim_float(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jobs_total", &[("tenant", "t0")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        // Same identity → same instrument.
        assert_eq!(reg.counter("jobs_total", &[("tenant", "t0")]).get(), 3);

        let g = reg.gauge("queue_depth", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_bucket_edges_are_le_inclusive() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_edges("lat", &[], &[0.001, 0.01, 0.1]);
        // Exactly on an edge lands in that bucket (le semantics).
        h.observe(Duration::from_millis(1));
        // Between edges lands in the next bucket up.
        h.observe(Duration::from_millis(2));
        // Above every edge lands in +Inf.
        h.observe(Duration::from_secs(1));
        let buckets = h.buckets();
        assert_eq!(buckets[0], (0.001, 1));
        assert_eq!(buckets[1], (0.01, 1));
        assert_eq!(buckets[2], (0.1, 0));
        assert!(buckets[3].0.is_infinite());
        assert_eq!(buckets[3].1, 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), Duration::from_millis(1003));
    }

    #[test]
    fn histogram_quantile_interpolates() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with_edges("lat", &[], &[0.1, 0.2, 0.4]);
        for _ in 0..10 {
            h.observe(Duration::from_millis(150)); // bucket (0.1, 0.2]
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.1 && p50 <= 0.2, "p50 = {p50}");
        assert_eq!(h.quantile(0.0), Some(0.1));
        let empty = reg.histogram_with_edges("lat2", &[], &[0.1]);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let reg = MetricsRegistry::new();
        reg.counter("fusiond_jobs_total", &[("tenant", "t1")])
            .add(4);
        let h = reg.histogram_with_edges("fusiond_wait_seconds", &[], &[0.5, 1.0]);
        h.observe(Duration::from_millis(250));
        h.observe(Duration::from_millis(750));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE fusiond_jobs_total counter"));
        assert!(text.contains("fusiond_jobs_total{tenant=\"t1\"} 4"));
        assert!(text.contains("# TYPE fusiond_wait_seconds histogram"));
        assert!(text.contains("fusiond_wait_seconds_bucket{le=\"0.5\"} 1"));
        assert!(text.contains("fusiond_wait_seconds_bucket{le=\"1.0\"} 2"));
        assert!(text.contains("fusiond_wait_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fusiond_wait_seconds_count 2"));
        assert!(text.contains("fusiond_wait_seconds_sum 1"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("m", &[]);
        reg.gauge("m", &[]);
    }
}
