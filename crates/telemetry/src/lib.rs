//! Observability substrate for the resilient fusion service: spans, a
//! metrics registry, and a flight recorder.
//!
//! Everything hangs off one cheap [`Telemetry`] handle:
//!
//! * **Spans** ([`Span`], [`SpanId`]) — parent-linked intervals on a
//!   pluggable monotonic [`Clock`], recorded per job as a phase tree
//!   (`job` → `queued` → `screen`/`derive`/`transform`, with
//!   `detect`/`regenerate`/`recompute` nested under the phase a kill hit).
//! * **Metrics** ([`MetricsRegistry`]) — named counters, gauges and
//!   fixed-bucket latency histograms with a lock-free hot path, rendered
//!   on demand in Prometheus text exposition format.
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded ring of recent
//!   spans/events, dumpable as Chrome `trace_event` JSON
//!   (`chrome://tracing`-loadable) on demand or automatically when a job
//!   fails.
//!
//! The handle is pay-for-what-you-use: [`Telemetry::disabled`] carries no
//! allocation and every recording call costs exactly one branch.
//!
//! ```
//! use telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! let job = tel.span_start("job", None, Some(1), "");
//! let phase = tel.span_start("screen", job, Some(1), "");
//! tel.histogram("fusiond_phase_duration_seconds", &[("phase", "screen")])
//!     .map(|h| h.observe(std::time::Duration::from_millis(3)));
//! tel.span_end(phase);
//! tel.span_end(job);
//! assert_eq!(tel.spans().len(), 2);
//! assert!(tel.chrome_trace().unwrap().contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod metrics;
mod recorder;
mod span;

pub use clock::{Clock, ManualClock, MonotonicClock, SharedClock};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, DEFAULT_LATENCY_EDGES};
pub use recorder::{FlightRecorder, TraceRecord};
pub use span::{Span, SpanId};

use span::OpenSpan;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default flight-recorder window, in records.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

struct Inner {
    clock: SharedClock,
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
    next_span: AtomicU64,
    /// Started-but-not-yet-closed spans, by raw id.
    open: Mutex<HashMap<u64, OpenSpan>>,
    /// Clock time at which each killed member went down, for detection
    /// latency: `note_kill` writes, `take_kill` consumes.
    kills: Mutex<HashMap<String, u64>>,
    /// Where to dump a Chrome trace when a job fails, if anywhere.
    failure_dump: Mutex<Option<PathBuf>>,
}

/// The shared telemetry handle.  Clone freely — all clones observe the
/// same spans, metrics and recorder.  A [`Telemetry::disabled`] handle
/// holds no state and every call on it is one branch.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A no-op handle: records nothing, costs one branch per call.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An enabled handle on the wall [`MonotonicClock`] with the default
    /// recorder window.
    pub fn enabled() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()), DEFAULT_RECORDER_CAPACITY)
    }

    /// An enabled handle on an explicit clock (use [`ManualClock`] in
    /// tests) and recorder capacity.
    pub fn with_clock(clock: SharedClock, recorder_capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                clock,
                metrics: MetricsRegistry::new(),
                recorder: FlightRecorder::new(recorder_capacity),
                next_span: AtomicU64::new(1),
                open: Mutex::new(HashMap::new()),
                kills: Mutex::new(HashMap::new()),
                failure_dump: Mutex::new(None),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Current clock time in nanoseconds, or `None` when disabled.
    pub fn now_nanos(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.clock.now_nanos())
    }

    /// Starts a span.  Returns `None` when disabled; thread the returned
    /// id back into [`Telemetry::span_end`].
    pub fn span_start(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        job: Option<u64>,
        detail: &str,
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        let open = OpenSpan {
            parent,
            name,
            job,
            start_nanos: inner.clock.now_nanos(),
            detail: detail.to_string(),
        };
        inner.open.lock().unwrap().insert(id.0, open);
        Some(id)
    }

    /// Ends a span started with [`Telemetry::span_start`], pushing it into
    /// the flight recorder.  Returns the span's duration, or `None` when
    /// disabled, `id` is `None`, or the span is unknown (already ended).
    pub fn span_end(&self, id: Option<SpanId>) -> Option<Duration> {
        self.span_end_with_detail(id, None)
    }

    /// Like [`Telemetry::span_end`] but replaces the span's detail text
    /// (e.g. with the terminal status) when `detail` is `Some`.
    pub fn span_end_with_detail(
        &self,
        id: Option<SpanId>,
        detail: Option<&str>,
    ) -> Option<Duration> {
        let inner = self.inner.as_ref()?;
        let id = id?;
        let mut open = inner.open.lock().unwrap().remove(&id.0)?;
        if let Some(detail) = detail {
            open.detail = detail.to_string();
        }
        let span = open.close(id, inner.clock.now_nanos());
        let duration = Duration::from_nanos(span.duration_nanos());
        inner.recorder.push(TraceRecord::Span(span));
        Some(duration)
    }

    /// Records an already-closed span from explicit timestamps — used when
    /// the start was observed in the past (e.g. a `detect` span opening at
    /// the kill time and closing when the detector notices).
    pub fn span_closed(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        job: Option<u64>,
        start_nanos: u64,
        detail: &str,
    ) -> Option<SpanId> {
        let inner = self.inner.as_ref()?;
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        let span = Span {
            id,
            parent,
            name,
            job,
            start_nanos,
            end_nanos: inner.clock.now_nanos().max(start_nanos),
            detail: detail.to_string(),
        };
        inner.recorder.push(TraceRecord::Span(span));
        Some(id)
    }

    /// Records a point-in-time event correlated with `span`.
    pub fn instant(
        &self,
        name: &'static str,
        job: Option<u64>,
        span: Option<SpanId>,
        detail: &str,
    ) {
        if let Some(inner) = &self.inner {
            inner.recorder.push(TraceRecord::Instant {
                name,
                at_nanos: inner.clock.now_nanos(),
                job,
                span,
                detail: detail.to_string(),
            });
        }
    }

    /// Notes the clock time at which `member` was killed, so the eventual
    /// detection can compute its latency.
    pub fn note_kill(&self, member: &str) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now_nanos();
            inner.kills.lock().unwrap().insert(member.to_string(), now);
        }
    }

    /// Consumes the kill time noted for `member`, if any.
    pub fn take_kill(&self, member: &str) -> Option<u64> {
        self.inner.as_ref()?.kills.lock().unwrap().remove(member)
    }

    /// The counter `name{labels}`, or `None` when disabled.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<Counter> {
        self.inner.as_ref().map(|i| i.metrics.counter(name, labels))
    }

    /// The gauge `name{labels}`, or `None` when disabled.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<Gauge> {
        self.inner.as_ref().map(|i| i.metrics.gauge(name, labels))
    }

    /// The latency histogram `name{labels}` with default edges, or `None`
    /// when disabled.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<Histogram> {
        self.inner
            .as_ref()
            .map(|i| i.metrics.histogram(name, labels))
    }

    /// Records `d` into histogram `name{labels}` in one call.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], d: Duration) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name, labels).observe(d);
        }
    }

    /// Bumps counter `name{labels}` in one call.
    pub fn count(&self, name: &str, labels: &[(&str, &str)]) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name, labels).inc();
        }
    }

    /// Prometheus text snapshot of every metric, or `None` when disabled.
    pub fn snapshot_prometheus(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.metrics.render_prometheus())
    }

    /// Chrome `trace_event` JSON of the flight-recorder window, or `None`
    /// when disabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner.as_ref().map(|i| i.recorder.chrome_trace())
    }

    /// Snapshot of completed spans in the flight-recorder window, oldest
    /// first.  Empty when disabled.
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => inner
                .recorder
                .records()
                .into_iter()
                .filter_map(|r| match r {
                    TraceRecord::Span(s) => Some(s),
                    TraceRecord::Instant { .. } => None,
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Snapshot of all records (spans and instants) in the window.
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => inner.recorder.records(),
            None => Vec::new(),
        }
    }

    /// How many flight-recorder records have been evicted.
    pub fn dropped_records(&self) -> u64 {
        self.inner
            .as_ref()
            .map(|i| i.recorder.dropped())
            .unwrap_or(0)
    }

    /// Arms the automatic failure dump: when [`Telemetry::dump_failure`]
    /// fires (a job fails), the Chrome trace is written to `path`.
    pub fn dump_to_on_failure(&self, path: PathBuf) {
        if let Some(inner) = &self.inner {
            *inner.failure_dump.lock().unwrap() = Some(path);
        }
    }

    /// Dumps the Chrome trace to the armed failure path, if one is set.
    /// Returns the path written, or `None` when disabled/unarmed/unwritable.
    pub fn dump_failure(&self, job: Option<u64>, cause: &str) -> Option<PathBuf> {
        let inner = self.inner.as_ref()?;
        let path = inner.failure_dump.lock().unwrap().clone()?;
        self.instant("job_failed", job, None, cause);
        std::fs::write(&path, inner.recorder.chrome_trace()).ok()?;
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manual() -> (Arc<ManualClock>, Telemetry) {
        let clock = Arc::new(ManualClock::new());
        let tel = Telemetry::with_clock(clock.clone(), 64);
        (clock, tel)
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        assert_eq!(tel.span_start("job", None, None, ""), None);
        assert_eq!(tel.span_end(Some(SpanId(1))), None);
        assert!(tel.counter("c", &[]).is_none());
        assert!(tel.snapshot_prometheus().is_none());
        assert!(tel.chrome_trace().is_none());
        assert!(tel.spans().is_empty());
        tel.instant("x", None, None, ""); // must not panic
    }

    #[test]
    fn span_tree_records_parent_links_and_durations() {
        let (clock, tel) = manual();
        let job = tel.span_start("job", None, Some(9), "");
        clock.advance(100);
        let phase = tel.span_start("screen", job, Some(9), "");
        clock.advance(400);
        assert_eq!(tel.span_end(phase), Some(Duration::from_nanos(400)));
        clock.advance(50);
        assert_eq!(tel.span_end(job), Some(Duration::from_nanos(550)));

        let spans = tel.spans();
        assert_eq!(spans.len(), 2);
        // Phase closed first, so it is recorded first.
        assert_eq!(spans[0].name, "screen");
        assert_eq!(spans[0].parent, job);
        assert_eq!(spans[1].name, "job");
        assert!(spans[1].encloses(&spans[0]));
    }

    #[test]
    fn span_end_is_idempotent_per_id() {
        let (_, tel) = manual();
        let id = tel.span_start("job", None, None, "");
        assert!(tel.span_end(id).is_some());
        assert_eq!(tel.span_end(id), None, "second end is a no-op");
    }

    #[test]
    fn concurrent_recording_preserves_invariants() {
        let (_, tel) = manual();
        let tel = Arc::new(tel);
        let handles: Vec<_> = (0..8)
            .map(|job| {
                let tel = tel.clone();
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let root = tel.span_start("job", None, Some(job), "");
                        let child = tel.span_start("screen", root, Some(job), "");
                        tel.span_end(child);
                        tel.span_end(root);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let spans = tel.spans();
        assert_eq!(spans.len(), 64, "ring holds all 8×4×2 spans");
        // Ids are unique, and every parent link points at a distinct
        // earlier-allocated span of the same job.
        let mut seen = std::collections::HashSet::new();
        for s in &spans {
            assert!(seen.insert(s.id), "duplicate span id {:?}", s.id);
        }
        for s in spans.iter().filter(|s| s.parent.is_some()) {
            let parent = spans.iter().find(|p| Some(p.id) == s.parent).unwrap();
            assert_eq!(parent.job, s.job, "parent belongs to the same job");
            assert!(parent.id < s.id, "parents allocate before children");
            assert!(parent.encloses(s), "child interval nests inside parent");
        }
    }

    #[test]
    fn kill_table_round_trips() {
        let (clock, tel) = manual();
        clock.advance(1_000);
        tel.note_kill("rg0#1");
        clock.advance(500);
        assert_eq!(tel.take_kill("rg0#1"), Some(1_000));
        assert_eq!(tel.take_kill("rg0#1"), None, "consumed");
        assert_eq!(tel.take_kill("rg9#9"), None, "never noted");
    }

    #[test]
    fn span_closed_back_dates_the_start() {
        let (clock, tel) = manual();
        clock.advance(5_000);
        let id = tel.span_closed("detect", None, Some(3), 2_000, "rg0#1");
        assert!(id.is_some());
        let spans = tel.spans();
        assert_eq!(spans[0].start_nanos, 2_000);
        assert_eq!(spans[0].end_nanos, 5_000);
    }

    #[test]
    fn failure_dump_writes_chrome_trace() {
        let (_, tel) = manual();
        let dir = std::env::temp_dir().join("telemetry-failure-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        tel.dump_to_on_failure(path.clone());
        let id = tel.span_start("job", None, Some(1), "");
        tel.span_end(id);
        let written = tel.dump_failure(Some(1), "deadline exceeded").unwrap();
        assert_eq!(written, path);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("job_failed"));
        std::fs::remove_file(&path).ok();
    }
}
