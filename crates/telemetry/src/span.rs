//! Spans: named, parent-linked intervals on the telemetry clock.
//!
//! A [`Span`] is one closed interval — a job phase, a regeneration, a
//! decode — with an optional parent link, so per-job activity reads as a
//! tree: `job` → `queued`/`screen`/`derive`/`transform` → `detect`/
//! `regenerate`/`recompute`.  Spans are cheap value types; the lifecycle
//! (open table, close-into-ring) lives on [`crate::Telemetry`].

/// Identifier of one span, unique per [`crate::Telemetry`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One completed span on the telemetry clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// This span's id.
    pub id: SpanId,
    /// The enclosing span, if any.
    pub parent: Option<SpanId>,
    /// The span's name (`job`, `queued`, `screen`, `regenerate`, ...).
    pub name: &'static str,
    /// The job the span belongs to, if any (becomes the trace row).
    pub job: Option<u64>,
    /// Start, in clock nanoseconds.
    pub start_nanos: u64,
    /// End, in clock nanoseconds (`>= start_nanos`).
    pub end_nanos: u64,
    /// Freeform detail (member name, terminal status, tag).
    pub detail: String,
}

impl Span {
    /// The span's duration in nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }

    /// Whether `other` lies fully inside this span's interval.
    pub fn encloses(&self, other: &Span) -> bool {
        self.start_nanos <= other.start_nanos && other.end_nanos <= self.end_nanos
    }
}

/// A span that has been started but not yet closed.
#[derive(Debug, Clone)]
pub(crate) struct OpenSpan {
    pub parent: Option<SpanId>,
    pub name: &'static str,
    pub job: Option<u64>,
    pub start_nanos: u64,
    pub detail: String,
}

impl OpenSpan {
    /// Closes the span at `end_nanos`.
    pub fn close(self, id: SpanId, end_nanos: u64) -> Span {
        Span {
            id,
            parent: self.parent,
            name: self.name,
            job: self.job,
            start_nanos: self.start_nanos,
            end_nanos: end_nanos.max(self.start_nanos),
            detail: self.detail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, start: u64, end: u64) -> Span {
        Span {
            id: SpanId(id),
            parent: None,
            name: "t",
            job: None,
            start_nanos: start,
            end_nanos: end,
            detail: String::new(),
        }
    }

    #[test]
    fn duration_and_enclosure() {
        let outer = span(1, 10, 100);
        let inner = span(2, 20, 90);
        assert_eq!(outer.duration_nanos(), 90);
        assert!(outer.encloses(&inner));
        assert!(!inner.encloses(&outer));
        assert!(outer.encloses(&outer));
    }

    #[test]
    fn close_clamps_to_monotonic() {
        let open = OpenSpan {
            parent: Some(SpanId(1)),
            name: "x",
            job: Some(7),
            start_nanos: 50,
            detail: "d".into(),
        };
        let closed = open.close(SpanId(2), 40);
        assert_eq!(closed.start_nanos, 50);
        assert_eq!(closed.end_nanos, 50, "end never precedes start");
        assert_eq!(closed.parent, Some(SpanId(1)));
    }
}
