//! Pluggable monotonic time for the telemetry plane.
//!
//! Every span timestamp and latency measurement flows through one [`Clock`].
//! Production uses [`MonotonicClock`] (an `Instant` epoch fixed at
//! construction); tests use [`ManualClock`] and advance time explicitly, so
//! span ordering, histogram placement and detection-latency arithmetic are
//! deterministic down to the nanosecond.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.  Implementations must be thread-safe and
/// never go backwards.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's epoch (its construction).
    fn now_nanos(&self) -> u64;
}

/// A shared clock handle, cheap to clone into every instrumented component.
pub type SharedClock = Arc<dyn Clock>;

/// Wall-time monotonic clock: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when the
/// test calls [`ManualClock::advance`] or [`ManualClock::set`].
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Release);
    }

    /// Sets the absolute time.  Panics when asked to move backwards — a
    /// monotonic clock never does, and a test that tries has a bug.
    pub fn set(&self, nanos: u64) {
        let previous = self.nanos.swap(nanos, Ordering::AcqRel);
        assert!(previous <= nanos, "ManualClock moved backwards");
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        clock.advance(250);
        assert_eq!(clock.now_nanos(), 250);
        clock.set(1_000);
        assert_eq!(clock.now_nanos(), 1_000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let clock = ManualClock::new();
        clock.set(100);
        clock.set(50);
    }
}
