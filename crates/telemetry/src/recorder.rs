//! Flight recorder: a bounded ring of recent spans and instant events,
//! dumpable as Chrome `trace_event` JSON.
//!
//! The ring keeps the last `capacity` records; older records are dropped
//! (and counted) so a long-running service holds a recent window, not an
//! unbounded log.  [`FlightRecorder::chrome_trace`] renders the window in
//! the [Chrome trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! — load the file at `chrome://tracing` or <https://ui.perfetto.dev> to
//! see the per-job span tree on a timeline.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::span::{Span, SpanId};

/// One record in the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// A completed span.
    Span(Span),
    /// A point-in-time event (retransmit, kill, shed, ...).
    Instant {
        /// Event name.
        name: &'static str,
        /// Clock nanoseconds at which it happened.
        at_nanos: u64,
        /// The job it belongs to, if any.
        job: Option<u64>,
        /// The correlated span, if any.
        span: Option<SpanId>,
        /// Freeform detail (member name, reason, ...).
        detail: String,
    },
}

#[derive(Debug, Default)]
struct Ring {
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

/// Bounded ring buffer of recent [`TraceRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends a record, evicting the oldest when full.
    pub fn push(&self, record: TraceRecord) {
        let mut ring = self.ring.lock().unwrap();
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }

    /// Snapshot of the current window, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.ring.lock().unwrap().records.iter().cloned().collect()
    }

    /// How many records have been evicted since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Renders the window as Chrome `trace_event` JSON.  Spans become
    /// complete (`"ph":"X"`) events on a per-job row (`tid` = job id);
    /// instants become `"ph":"i"` events.  Timestamps are microseconds,
    /// as the format requires.
    pub fn chrome_trace(&self) -> String {
        let records = self.records();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for record in &records {
            if !first {
                out.push(',');
            }
            first = false;
            match record {
                TraceRecord::Span(span) => {
                    out.push_str(&format!(
                        "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"span\":{},{}\"detail\":{}}}}}",
                        json_string(span.name),
                        span.job.unwrap_or(0),
                        span.start_nanos / 1_000,
                        span.duration_nanos().div_ceil(1_000).max(1),
                        span.id.0,
                        match span.parent {
                            Some(parent) => format!("\"parent\":{},", parent.0),
                            None => String::new(),
                        },
                        json_string(&span.detail),
                    ));
                }
                TraceRecord::Instant {
                    name,
                    at_nanos,
                    job,
                    span,
                    detail,
                } => {
                    out.push_str(&format!(
                        "{{\"name\":{},\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{{}\"detail\":{}}}}}",
                        json_string(name),
                        job.unwrap_or(0),
                        at_nanos / 1_000,
                        match span {
                            Some(span) => format!("\"span\":{},", span.0),
                            None => String::new(),
                        },
                        json_string(detail),
                    ));
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, start: u64, end: u64) -> TraceRecord {
        TraceRecord::Span(Span {
            id: SpanId(id),
            parent: if id > 1 { Some(SpanId(1)) } else { None },
            name: "phase",
            job: Some(7),
            start_nanos: start,
            end_nanos: end,
            detail: String::new(),
        })
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let recorder = FlightRecorder::new(3);
        for i in 0..5 {
            recorder.push(span(i, i * 10, i * 10 + 5));
        }
        let records = recorder.records();
        assert_eq!(records.len(), 3);
        assert_eq!(recorder.dropped(), 2);
        // Oldest two evicted; window starts at id 2.
        match &records[0] {
            TraceRecord::Span(s) => assert_eq!(s.id, SpanId(2)),
            other => panic!("unexpected record {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_is_loadable_json() {
        let recorder = FlightRecorder::new(8);
        recorder.push(span(1, 1_000, 9_000));
        recorder.push(TraceRecord::Instant {
            name: "retransmit",
            at_nanos: 4_000,
            job: Some(7),
            span: Some(SpanId(1)),
            detail: "rg0#1 \"late\"".into(),
        });
        let json = recorder.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("\"ts\":1"));
        assert!(json.contains("\"dur\":8"));
        // Detail with quotes must be escaped.
        assert!(json.contains("rg0#1 \\\"late\\\""));
        // Balanced braces — cheap well-formedness check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn zero_length_span_renders_nonzero_duration() {
        let recorder = FlightRecorder::new(2);
        recorder.push(span(1, 5_000, 5_000));
        assert!(recorder.chrome_trace().contains("\"dur\":1"));
    }
}
