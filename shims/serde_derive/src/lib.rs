//! Offline shim of `serde_derive`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]` —
//! no payload is ever serialised to bytes (messages move between threads by
//! ownership transfer).  The shim `serde` crate provides blanket trait
//! impls, so these derives legitimately expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: the shim `serde::Serialize` trait has a blanket
/// impl, so there is nothing to generate.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: the shim `serde::Deserialize` trait has a
/// blanket impl, so there is nothing to generate.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
