//! Offline shim of `proptest`.
//!
//! Supports the subset the linalg property suite uses: the `proptest!`
//! macro with `#![proptest_config(...)]` and `arg in strategy` bindings,
//! numeric-range strategies, `prop::collection::vec` with fixed or ranged
//! lengths, and `prop_assert!`/`prop_assert_eq!`.  Inputs are drawn from a
//! deterministic per-test generator (seeded by test name and case index),
//! so failures reproduce exactly.  There is no shrinking: a failing case
//! reports the case index instead of a minimised input.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::ops::Range;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic source of test inputs.
pub type TestRng = StdRng;

/// Builds the generator for one test case, seeded by test name and case
/// index so every run draws the same inputs.
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut hasher = DefaultHasher::new();
    test_name.hash(&mut hasher);
    case.hash(&mut hasher);
    StdRng::seed_from_u64(hasher.finish())
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "empty i32 strategy range");
        self.start + (rng.next_u64() % span) as i32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<u8> {
    type Value = u8;

    fn generate(&self, rng: &mut TestRng) -> u8 {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "empty u8 strategy range");
        self.start + (rng.next_u64() % span) as u8
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "empty u32 strategy range");
        self.start + (rng.next_u64() % span) as u32
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        let span = self.end - self.start;
        assert!(span > 0, "empty u64 strategy range");
        self.start + rng.next_u64() % span
    }
}

/// Strategy produced by [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.min_len >= self.max_len {
            self.min_len
        } else {
            rng.gen_range(self.min_len..self.max_len)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Accepted by [`collection::vec`] as a length spec: a fixed `usize` or a
/// half-open `Range<usize>`.
pub trait IntoLenRange {
    /// Converts to inclusive-min / exclusive-max bounds.
    fn into_len_range(self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn into_len_range(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoLenRange for Range<usize> {
    fn into_len_range(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{IntoLenRange, Strategy, VecStrategy};

    /// A strategy for `Vec`s whose elements come from `element` and whose
    /// length is fixed or drawn from a range.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len) = len.into_len_range();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }
}

/// Mirror of the `proptest::prop` module path used in strategy expressions.
pub mod prop {
    pub use crate::collection;
}

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skips the current case when its precondition does not hold.  Expands to
/// a `continue` of the per-case loop [`proptest!`] generates, so rejected
/// cases still count against `cases` (no resampling, unlike real proptest
/// — keep rejection rates low).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserts two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::test_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_case_rng);)*
                $body
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn f64_range_strategy_respects_bounds(x in -2.0..3.0f64) {
            prop_assert!((-2.0..3.0).contains(&x));
        }

        #[test]
        fn vec_with_fixed_len(v in collection::vec(0.0..1.0f64, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn vec_with_ranged_len(v in prop::collection::vec(-5i32..5, 1..10)) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|x| (-5..5).contains(x)));
        }

        #[test]
        fn nested_vec_strategy(rows in collection::vec(collection::vec(0.0..1.0f64, 3), 2..4)) {
            prop_assert!(rows.iter().all(|r| r.len() == 3));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        use crate::Strategy;
        let strategy = crate::collection::vec(0.0..1.0f64, 8);
        let a = strategy.generate(&mut crate::test_rng("t", 3));
        let b = strategy.generate(&mut crate::test_rng("t", 3));
        let c = strategy.generate(&mut crate::test_rng("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
