//! Offline shim of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its message and data
//! types to document that they are wire-safe, but never actually serialises
//! them (the `scp` router moves messages between threads by ownership
//! transfer).  This shim keeps those derives compiling without network
//! access: the traits are markers with blanket impls and the derive macros
//! expand to nothing.  Swapping in the real `serde` is a one-line change in
//! the root `Cargo.toml`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module (bound-only usage).
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module (bound-only usage).
pub mod ser {
    pub use crate::Serialize;
}
