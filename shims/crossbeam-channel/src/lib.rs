//! Offline shim of `crossbeam-channel`.
//!
//! An unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar`,
//! exposing the subset of the crossbeam-channel API the `scp` runtime uses:
//! `unbounded()`, cloneable `Sender`/`Receiver`, blocking/timeout/non-
//! blocking receive, queue length, and crossbeam's disconnection semantics
//! (send fails once every receiver is gone; receive fails once every sender
//! is gone *and* the queue is drained).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver has disconnected.
/// Carries the unsent message back to the caller, like crossbeam's.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender has disconnected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender has disconnected.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout elapsed.
    Timeout,
    /// The channel is empty and every sender has disconnected.
    Disconnected,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cond: Condvar,
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

/// The sending half of an unbounded channel. Cloneable; usable from `&self`.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Cloneable; clones drain the
/// same queue.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cond: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Appends a message to the queue, failing if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.cond.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.shared.cond.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.cond.wait(inner).unwrap();
        }
    }

    /// Blocks until a message arrives, every sender disconnects, or the
    /// timeout elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = self.shared.cond.wait_timeout(inner, remaining).unwrap();
            inner = guard;
            if result.timed_out() && inner.queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Pops a queued message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(value) => Ok(value),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().unwrap().receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.inner.lock().unwrap().receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_len() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn recv_fails_after_all_senders_drop_and_queue_drains() {
        let (tx, rx) = unbounded();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 9);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(3));
        handle.join().unwrap();
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
