//! Offline shim of `rand` (0.8 API shape).
//!
//! Provides exactly what the synthetic scene generator needs: a seedable
//! deterministic generator ([`rngs::StdRng`], here SplitMix64) and
//! `Rng::gen_range` over half-open `f64`/integer ranges.  Determinism per
//! seed is the only property the workspace relies on; statistical quality
//! beyond SplitMix64 is not required.

use std::ops::Range;

/// A generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Subset of the `rand::Rng` interface used by this workspace.
pub trait Rng {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// A value uniformly distributed over the half-open `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly over `self`.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let unit = rng.gen_f64();
        let value = self.start + unit * (self.end - self.start);
        // Guard against end-point inclusion from floating rounding.
        if value >= self.end {
            self.start
        } else {
            value
        }
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<R: Rng>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32, u8);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Steele/Lea/Flood); full 2^64 period.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_range_is_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_range_is_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn f64_stream_covers_the_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1_000 {
            let x: f64 = rng.gen_range(0.0..1.0);
            lo |= x < 0.25;
            hi |= x > 0.75;
        }
        assert!(lo && hi, "stream suspiciously concentrated");
    }
}
