//! Offline shim of `criterion`.
//!
//! Implements the API surface the `bench` crate's harness-false benches use
//! (`Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`) as a plain wall-clock harness: every sample times the
//! closure once and the per-iteration mean/min are printed.  No statistics,
//! HTML reports or CLI filtering — enough to compile the benches, record a
//! perf trajectory and keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark case within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(value: &str) -> Self {
        Self {
            id: value.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(value: String) -> Self {
        Self { id: value }
    }
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up to populate caches / lazy state.
        let _ = routine();
        for _ in 0..self.samples {
            let start = Instant::now();
            let _ = routine();
            self.timings.push(start.elapsed());
        }
    }
}

fn run_case(group: Option<&str>, id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        timings: Vec::new(),
    };
    f(&mut bencher);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.timings.is_empty() {
        println!("bench {label:<48} (no samples)");
        return;
    }
    let total: Duration = bencher.timings.iter().sum();
    let mean = total / bencher.timings.len() as u32;
    let min = bencher.timings.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<48} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.timings.len()
    );
}

/// A named collection of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each case records.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut routine = routine;
        run_case(Some(&self.name), &id.to_string(), self.samples, |b| {
            routine(b)
        });
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut routine = routine;
        run_case(Some(&self.name), &id.to_string(), self.samples, |b| {
            routine(b, input)
        });
        self
    }

    /// Ends the group (printing already happened per case).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepts and ignores CLI arguments (compatibility with the real
    /// criterion's generated `main`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut routine = routine;
        run_case(None, &id.to_string(), 10, |b| routine(b));
        self
    }

    /// No-op summary hook (compatibility).
    pub fn final_summary(&mut self) {}
}

/// An opaque value barrier preventing the optimiser from deleting a
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher {
            samples: 5,
            timings: Vec::new(),
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.timings.len(), 5);
        assert_eq!(calls, 6, "5 timed samples plus 1 warm-up");
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("screen", 64).to_string(), "screen/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    criterion_group!(smoke_group, smoke_case);

    fn smoke_case(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>())
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn group_macro_expansion_runs() {
        smoke_group();
    }
}
