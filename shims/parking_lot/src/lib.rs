//! Offline shim of `parking_lot`.
//!
//! Thin wrappers over `std::sync` locks exposing the parking_lot API shape:
//! `lock()`/`read()`/`write()` return guards directly (no poisoning
//! `Result`).  A poisoned std lock is recovered rather than propagated,
//! matching parking_lot's poison-free semantics closely enough for this
//! workspace.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// parking_lot-style mutex: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// parking_lot-style reader-writer lock: `read()`/`write()` return guards
/// directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
