//! Offline shim of `rayon`.
//!
//! Implements the subset the shared-memory PCT pipeline uses —
//! `slice.par_iter()`, `slice.par_chunks(n)`, `.map(f).collect()` and
//! `current_num_threads()` — with genuine data parallelism: items are split
//! into one contiguous batch per available core and mapped on scoped OS
//! threads, preserving input order in the collected output.  There is no
//! work stealing; the map closures in this workspace are close enough to
//! uniform that static batching keeps the cores busy.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations will use: the installed pool size
/// when called inside [`ThreadPool::install`], otherwise the logical CPU
/// count.
pub fn current_num_threads() -> usize {
    POOL_THREADS.with(Cell::get).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim,
/// present for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (CPU-count) sizing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool size; `0` means the logical CPU count, as in rayon.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A sized scope for parallel operations. The shim spawns fresh scoped
/// threads per operation rather than keeping a worker pool; `install` simply
/// bounds how many threads those operations may use.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// operations it performs.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(Some(self.threads)));
        let result = op();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::slice::ParallelSlice;
}

pub mod slice {
    //! Parallel iteration over slices.

    use super::iter::ParIter;

    /// Extension trait providing `par_iter`/`par_chunks` on slices (and via
    /// deref, on `Vec`).
    pub trait ParallelSlice<T: Sync> {
        /// A parallel iterator over the elements.
        fn par_iter(&self) -> ParIter<&T>;

        /// A parallel iterator over contiguous chunks of `chunk_size`
        /// elements (the final chunk may be shorter).
        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<&T> {
            ParIter::new(self.iter().collect())
        }

        fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
            ParIter::new(self.chunks(chunk_size.max(1)).collect())
        }
    }
}

pub mod iter {
    //! Minimal parallel-iterator pipeline: source -> map -> collect.

    /// A parallel iterator over an eagerly materialised item list.
    pub struct ParIter<I> {
        items: Vec<I>,
    }

    impl<I: Send> ParIter<I> {
        pub(crate) fn new(items: Vec<I>) -> Self {
            Self { items }
        }

        /// Maps every item through `f` in parallel.
        pub fn map<F, R>(self, f: F) -> ParMap<I, F>
        where
            F: Fn(I) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Number of items the iterator will yield.
        pub fn len(&self) -> usize {
            self.items.len()
        }

        /// Whether the iterator is empty.
        pub fn is_empty(&self) -> bool {
            self.items.is_empty()
        }
    }

    /// A mapped parallel iterator; terminal `collect` runs the map on
    /// scoped threads.
    pub struct ParMap<I, F> {
        items: Vec<I>,
        f: F,
    }

    impl<I: Send, F> ParMap<I, F> {
        /// Runs the map in parallel and collects the results in input order.
        pub fn collect<C, R>(self) -> C
        where
            F: Fn(I) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            parallel_map(self.items, &self.f).into_iter().collect()
        }
    }

    fn parallel_map<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let n = items.len();
        let threads = super::current_num_threads().min(n.max(1));
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let batch_len = n.div_ceil(threads);
        let mut batches: Vec<Vec<I>> = Vec::with_capacity(threads);
        let mut source = items.into_iter();
        loop {
            let batch: Vec<I> = source.by_ref().take(batch_len).collect();
            if batch.is_empty() {
                break;
            }
            batches.push(batch);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .into_iter()
                .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), input.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn par_chunks_covers_every_element_in_order() {
        let input: Vec<u32> = (0..1_003).collect();
        let sums: Vec<(usize, u64)> = input
            .par_chunks(97)
            .map(|c| (c.len(), c.iter().map(|&x| x as u64).sum()))
            .collect();
        let total: u64 = sums.iter().map(|&(_, s)| s).sum();
        let count: usize = sums.iter().map(|&(n, _)| n).sum();
        assert_eq!(count, 1_003);
        assert_eq!(total, (0..1_003u64).sum());
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_scopes_the_thread_count_override() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        assert_eq!(pool.install(super::current_num_threads), 2);
        // The override does not leak out of install().
        let ambient = super::current_num_threads();
        assert!(ambient >= 1);
        let nested: Vec<usize> = (0..4u8)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|_| super::current_num_threads())
            .collect();
        assert_eq!(nested.len(), 4);
    }
}
