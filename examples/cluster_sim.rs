//! Deterministic cluster-simulator sweep: 200 seeded fault scenarios —
//! kills at every pipeline phase, double kills, kills during
//! regeneration, machine kills, partitions, transit loss, reorder jitter
//! and stragglers — each checked byte-for-byte against the sequential
//! pipeline on pure virtual time, with the worst-case scenario's span
//! tree printed for forensics.
//!
//! Run with: `cargo run --example cluster_sim --release` (optionally pass
//! a scenario count, e.g. `-- 100` for the CI smoke sweep).
//!
//! To reproduce any row, construct the same sweep (`Sweep::new(seed, n)`),
//! take the row's index from its `sNNNN-` name prefix, and run that
//! scenario alone under a `SimHarness` — same seed, same bytes.

use sim::Sweep;
use std::time::Instant;

fn main() {
    let seed = 0xC1A0;
    let count = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200);
    println!("sweep seed {seed:#x}: {count} scenarios (kill phase x member x topology)\n");

    let started = Instant::now();
    let report = Sweep::new(seed, count)
        .run()
        .expect("every scenario converges");
    let wall = started.elapsed();

    println!("{}", report.pass_table());
    println!(
        "{} / {} passed in {:.2} s wall ({:.0} scenarios/s)",
        report.passed(),
        report.rows.len(),
        wall.as_secs_f64(),
        report.rows.len() as f64 / wall.as_secs_f64()
    );
    if let (Some(p50), Some(p99)) = (
        report.detection_latency_quantile_ns(0.5),
        report.detection_latency_quantile_ns(0.99),
    ) {
        println!(
            "virtual detection latency: p50 {:.1} ms, p99 {:.1} ms",
            p50 as f64 / 1e6,
            p99 as f64 / 1e6
        );
    }

    if let Some(worst) = &report.worst {
        println!(
            "\nworst-case virtual makespan: {} at {:.1} ms (bound {:.1} ms)",
            worst.name,
            worst.makespan.as_secs_f64() * 1e3,
            worst.makespan_bound.as_secs_f64() * 1e3
        );
        println!(
            "  kills {} detections {} false-positives {} regenerations {} retransmits {}",
            worst.kills_injected,
            worst.detections,
            worst.false_positives,
            worst.regenerations,
            worst.retransmits
        );
        println!("\nworst-case span tree (virtual nanoseconds):");
        for line in worst.span_tree.lines() {
            println!("  {line}");
        }
    }

    if !report.all_passed() {
        eprintln!("sweep had failing scenarios");
        std::process::exit(1);
    }
}
