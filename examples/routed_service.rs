//! Policy-driven routing in action: the same heterogeneous workload run
//! under three routing policies (size threshold, least loaded, round-robin),
//! printing the per-route job mix each policy produces — and verifying that
//! the route never changes the bytes.
//!
//! Run with: `cargo run --release --example routed_service`

use hsi::{CubeDims, HyperCube, SceneConfig, SceneGenerator};
use pct::{PctConfig, SequentialPct};
use service::{
    BackendKind, CubeSource, FusionService, JobSpec, LeastLoadedPolicy, RoundRobinPolicy,
    ServiceConfig, ServiceReport, SharedRoutingPolicy, SizeThresholdPolicy,
};
use std::sync::Arc;

/// A mixed-size workload: small cubes (protocol overhead dominates) and
/// larger ones (parallel lanes pay off).
fn workload() -> Result<Vec<Arc<HyperCube>>, Box<dyn std::error::Error>> {
    let mut cubes = Vec::new();
    for i in 0..18u64 {
        let mut config = SceneConfig::small(700 + i);
        let (side, bands) = if i % 3 == 0 { (48, 24) } else { (16, 8) };
        config.dims = CubeDims::new(side, side, bands);
        cubes.push(Arc::new(SceneGenerator::new(config)?.generate()));
    }
    Ok(cubes)
}

fn run_policy(
    name: &str,
    policy: SharedRoutingPolicy,
    cubes: &[Arc<HyperCube>],
) -> Result<ServiceReport, Box<dyn std::error::Error>> {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(3)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(2)
            .queue_capacity(cubes.len())
            .max_in_flight(8)
            .routing(policy)
            .build()?,
    )?;

    // Every job is Route::Auto — the policy decides the lane.
    let mut handles = Vec::new();
    for cube in cubes {
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(cube)))
            .shards(3)
            .build()?;
        handles.push(service.submit(spec)?);
    }
    for (handle, cube) in handles.iter_mut().zip(cubes) {
        let outcome = handle.wait()?;
        let reference = SequentialPct::new(PctConfig::paper()).run(cube)?;
        assert_eq!(
            outcome.output().expect("job completes"),
            &reference,
            "{name}: routing changed the bytes"
        );
    }
    let report = service.shutdown();
    println!("policy {name:>14}:");
    for kind in BackendKind::ALL {
        let stats = report.route(kind);
        println!(
            "    {:>13}: {:>2} jobs ({} auto-routed), {:>3} tasks",
            kind.label(),
            stats.jobs_routed,
            stats.auto_routed,
            stats.tasks_dispatched
        );
    }
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cubes = workload()?;
    println!(
        "routing {} auto jobs (6 large 48x48x24, 12 small 16x16x8) under three policies\n",
        cubes.len()
    );

    let size = run_policy(
        "size-threshold",
        Arc::new(SizeThresholdPolicy::default()),
        &cubes,
    )?;
    // The size policy must split the workload exactly: 12 small cubes to
    // the shared-memory lane, 6 large ones to the standard lane.
    assert_eq!(size.route(BackendKind::SharedMemory).jobs_routed, 12);
    assert_eq!(size.route(BackendKind::Standard).jobs_routed, 6);

    let load = run_policy("least-loaded", Arc::new(LeastLoadedPolicy), &cubes)?;
    assert_eq!(load.jobs_completed, cubes.len() as u64);

    let rr = run_policy("round-robin", Arc::new(RoundRobinPolicy::default()), &cubes)?;
    // Round-robin touches every lane.
    for kind in BackendKind::ALL {
        assert!(
            rr.route(kind).jobs_routed > 0,
            "round-robin never used the {} lane",
            kind.label()
        );
    }

    println!(
        "\nall {} jobs byte-identical to SequentialPct under every policy",
        cubes.len()
    );
    Ok(())
}
