//! Resilient fusion under attack: runs the replicated manager/worker pipeline
//! while an adversary kills a worker member mid-run, and shows that the
//! output is unaffected and the replication level is regenerated.
//!
//! Run with: `cargo run --example resilient_fusion --release`

use hsi::{CubeDims, SceneConfig, SceneGenerator};
use pct::resilient::{AttackPlan, ResilientPct};
use pct::{DistributedPct, PctConfig};

fn main() {
    let mut config = SceneConfig::small(7);
    config.dims = CubeDims::new(64, 64, 32);
    let cube = SceneGenerator::new(config).expect("valid scene").generate();

    // Reference: the plain distributed run.
    let reference = DistributedPct::new(PctConfig::paper(), 2)
        .run(&cube)
        .expect("distributed fusion");

    // Resilient run with level-2 replication while worker0#0 is killed.
    let (output, report) = ResilientPct::new(PctConfig::paper(), 2, 2)
        .run_with_attack(&cube, AttackPlan::kill_first_worker_member())
        .expect("resilient fusion survives the attack");

    println!("attacked members:      {:?}", report.members_attacked);
    println!("regenerations:         {}", report.regenerations.len());
    for regen in &report.regenerations {
        println!(
            "  {} was lost; regenerated as {} on node {}",
            regen.failed, regen.replacement, regen.node
        );
    }
    println!("duplicate results:     {}", report.duplicates_ignored);
    println!("tasks re-issued:       {}", report.tasks_reissued);
    println!("heartbeats observed:   {}", report.heartbeats);

    let diff = reference
        .image
        .mean_abs_diff(&output.image)
        .expect("same image size");
    println!("output difference vs undisturbed run: {diff:.3} (should be ~0)");
}
