//! Full fusion pipeline on a paper-scale scene: reproduces the qualitative
//! artefacts of Figures 2 and 3 — two single-band frames (near 400 nm and
//! 1998 nm) and the fused colour composite — and compares the sequential and
//! distributed implementations.
//!
//! Run with: `cargo run --example fusion_pipeline --release`
//! (Pass a directory argument to choose where the images are written.)

use hsi::{io, SceneConfig, SceneGenerator};
use pct::{DistributedPct, PctConfig, SequentialPct};
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    // A reduced paper-like scene (the full 320x320x210 takes minutes in a
    // debug build; 128x128x64 preserves the qualitative behaviour).
    let mut config = SceneConfig::paper_full(2026);
    config.dims = hsi::CubeDims::new(128, 128, 64);
    let generator = SceneGenerator::new(config).expect("valid scene config");
    let cube = generator.generate();

    // Figure 2: two raw frames, one in the visible and one in the SWIR.
    let band_visible = generator.band_for_wavelength(400.0);
    let band_swir = generator.band_for_wavelength(1998.0);
    let visible_path = out_dir.join("band_400nm.pgm");
    let swir_path = out_dir.join("band_1998nm.pgm");
    io::write_band_pgm(&cube, band_visible, &visible_path).expect("write 400nm frame");
    io::write_band_pgm(&cube, band_swir, &swir_path).expect("write 1998nm frame");
    println!(
        "figure 2 frames: {} and {}",
        visible_path.display(),
        swir_path.display()
    );

    // Figure 3: the fused colour composite (sequential reference).
    let sequential = SequentialPct::new(PctConfig::paper())
        .run(&cube)
        .expect("sequential fusion");
    let fused_path = out_dir.join("fused.ppm");
    io::write_ppm(&sequential.image, &fused_path).expect("write fused composite");
    println!(
        "figure 3 composite: {} (unique set {}, PC1-3 variance {:.1}%)",
        fused_path.display(),
        sequential.unique_count,
        100.0 * sequential.variance_fraction(3)
    );

    // The distributed manager/worker implementation must agree with it.
    let distributed = DistributedPct::new(PctConfig::paper(), 4)
        .run(&cube)
        .expect("distributed fusion");
    let diff = sequential
        .image
        .mean_abs_diff(&distributed.image)
        .expect("same image size");
    println!(
        "distributed (4 workers) vs sequential: mean per-channel difference {:.2} (out of 255)",
        diff
    );
}
