//! Attack drill on the resiliency substrate itself (no image processing):
//! builds replica groups, runs a scripted attack wave against their members,
//! and shows the failure detector and regeneration protocol restoring the
//! replication level after every hit.
//!
//! Run with: `cargo run --example attack_drill --release`

use resilience::group::ReplicaGroup;
use resilience::{DetectorConfig, FailureDetector, MembershipTable, PlacementPolicy, Regenerator};

fn main() {
    // Four logical workers replicated to level 2 across eight nodes.
    let membership = MembershipTable::new();
    let nodes: Vec<usize> = (0..8).collect();
    for w in 0..4 {
        membership.insert(ReplicaGroup::new(format!("worker{w}"), 2, &[w, w + 4]).expect("group"));
    }
    let mut detector = FailureDetector::new(DetectorConfig::default_lan());
    for member in membership.all_members() {
        detector.watch(member, 0);
    }
    let mut regenerator = Regenerator::new(
        membership.clone(),
        PlacementPolicy::SpreadAcrossNodes,
        nodes,
    );

    // Attack wave: one member goes silent every 2 simulated seconds.
    let victims: Vec<_> = membership.all_members().into_iter().step_by(2).collect();
    let mut clock_ms = 0u64;
    for (i, _victim) in victims.iter().enumerate() {
        // Everyone except current and past victims keeps heartbeating.
        clock_ms += 2_000;
        for member in membership.all_members() {
            if !victims[..=i].contains(&member) {
                detector.heartbeat(&member, clock_ms);
            }
        }
        for failed in detector.sweep(clock_ms) {
            detector.unwatch(&failed);
            let event = regenerator
                .handle_failure(&failed, |_replacement, _node| Ok(()))
                .expect("regeneration")
                .expect("member was live");
            detector.watch(event.replacement.clone(), clock_ms);
            println!(
                "t={:>5.1}s  attack on {:<12} -> regenerated as {:<12} on node {}",
                clock_ms as f64 / 1000.0,
                event.failed.to_string(),
                event.replacement.to_string(),
                event.node
            );
        }
    }

    println!("\nfinal membership:");
    for name in membership.group_names() {
        let group = membership.get(&name).expect("group exists");
        let members: Vec<String> = group.members.iter().map(|m| m.to_string()).collect();
        println!(
            "  {name}: {} members ({}), degraded: {}",
            members.len(),
            members.join(", "),
            group.is_degraded()
        );
    }
    println!(
        "\nEvery group is back at its target level: {} regenerations performed.",
        regenerator.history().len()
    );
}
