//! `fusiond` under load: 64 concurrent fusion jobs — mixed priorities,
//! mixed backends, one mid-run worker kill on the resilient lane — all
//! multiplexed over one shared, sharded worker pool, with every output
//! verified byte-identical to the sequential reference.
//!
//! Run with: `cargo run --release --example fusion_service`

use hsi::{CubeDims, HyperCube, SceneConfig, SceneGenerator};
use pct::{PctConfig, SequentialPct};
use service::{
    BackendKind, CubeSource, FusionService, JobSpec, PoolConfig, Priority, ServiceConfig,
};
use std::sync::Arc;

const JOBS: u64 = 64;

fn scene(i: u64) -> SceneConfig {
    let mut config = SceneConfig::small(100 + i);
    let side = 24 + (i as usize % 5) * 4; // 24..40 pixels square
    let bands = 12 + (i as usize % 3) * 4; // 12..20 spectral bands
    config.dims = CubeDims::new(side, side, bands);
    config
}

fn main() {
    let service = FusionService::start(ServiceConfig {
        pool: PoolConfig {
            standard_workers: 4,
            replica_groups: 2,
            replication_level: 2,
            ..PoolConfig::default()
        },
        queue_capacity: JOBS as usize,
        max_in_flight: 12,
        ..ServiceConfig::default()
    })
    .expect("service starts");

    println!(
        "fusiond up: 4 standard workers + 2 replica groups x level 2 ({:?})",
        service.attack_targets()
    );

    // Submit 64 jobs: priorities cycle high/normal/low, every third job runs
    // on the resilient lane, shard counts vary per job.
    let mut jobs: Vec<(u64, Arc<HyperCube>, &'static str, &'static str)> = Vec::new();
    let mut attacked = false;
    for i in 0..JOBS {
        let cube = Arc::new(
            SceneGenerator::new(scene(i))
                .expect("valid scene")
                .generate(),
        );
        let priority = Priority::ALL[i as usize % 3];
        let backend = if i % 3 == 1 {
            BackendKind::Resilient
        } else {
            BackendKind::Standard
        };
        let spec = JobSpec::new(CubeSource::InMemory(Arc::clone(&cube)))
            .with_priority(priority)
            .with_backend(backend)
            .with_shards(3 + i as usize % 3);
        let id = service.submit(spec).expect("submission accepted");
        jobs.push((id, cube, priority.label(), backend.label()));

        // Stage the attack once a batch of resilient work is in flight: kill
        // one member of replica group 0 while the service is busy.
        if i == JOBS / 4 && !attacked {
            attacked = service.inject_attack("rg0#0");
            println!("attack injected against rg0#0 (accepted: {attacked})");
        }
    }
    assert!(attacked, "the staged attack must have fired");
    println!(
        "{} jobs submitted (queue depth now {})",
        JOBS,
        service.queue_depth()
    );

    // Collect every output and verify it byte-for-byte against the
    // sequential reference — concurrency, sharding, replication and the
    // attack must all be invisible in the results.
    let mut verified = 0;
    for (id, cube, priority, backend) in &jobs {
        let output = service.wait(*id).expect("job completes");
        let reference = SequentialPct::new(PctConfig::paper())
            .run(cube)
            .expect("reference run");
        assert_eq!(
            output, reference,
            "job {id} ({priority}/{backend}) diverged from the sequential reference"
        );
        verified += 1;
    }
    println!("{verified}/{JOBS} outputs byte-identical to SequentialPct");

    let report = service.shutdown();
    assert_eq!(report.jobs_completed, JOBS);
    assert!(
        !report.members_attacked.is_empty(),
        "attack log must record the kill"
    );
    println!();
    print!("{}", report.render());
}
