//! `fusiond` under load: 64 concurrent fusion jobs — mixed priorities,
//! mixed routes (pinned standard/resilient and policy-routed `Auto`), one
//! mid-run worker kill on the resilient lane — all multiplexed over one
//! shared, sharded worker pool, with every output verified byte-identical
//! to the sequential reference.
//!
//! Run with: `cargo run --release --example fusion_service`

use hsi::{CubeDims, HyperCube, SceneConfig, SceneGenerator};
use pct::{PctConfig, SequentialPct};
use service::{
    BackendKind, CubeSource, FusionService, JobHandle, JobSpec, Priority, Route, ServiceConfig,
};
use std::sync::Arc;

const JOBS: u64 = 64;

fn scene(i: u64) -> SceneConfig {
    let mut config = SceneConfig::small(100 + i);
    let side = 24 + (i as usize % 5) * 4; // 24..40 pixels square
    let bands = 12 + (i as usize % 3) * 4; // 12..20 spectral bands
    config.dims = CubeDims::new(side, side, bands);
    config
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(4)
            .replica_groups(2)
            .replication_level(2)
            .shared_memory_executors(2)
            .queue_capacity(JOBS as usize)
            .max_in_flight(12)
            .build()?,
    )?;

    println!(
        "fusiond up: 4 standard workers + 2 replica groups x level 2 + 2 shm executors ({:?})",
        service.attack_targets()
    );

    // Submit 64 jobs: priorities cycle high/normal/low; every third job is
    // pinned to the resilient lane, every third to standard, and the rest
    // go through the routing policy (`Auto`); shard counts vary per job.
    let mut jobs: Vec<(JobHandle, Arc<HyperCube>, &'static str, &'static str)> = Vec::new();
    let mut attacked = false;
    for i in 0..JOBS {
        let cube = Arc::new(SceneGenerator::new(scene(i))?.generate());
        let priority = Priority::ALL[i as usize % 3];
        let route = match i % 3 {
            1 => Route::Pinned(BackendKind::Resilient),
            2 => Route::Auto,
            _ => Route::Pinned(BackendKind::Standard),
        };
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .priority(priority)
            .route(route)
            .shards(3 + i as usize % 3)
            .build()?;
        let handle = service.submit(spec)?;
        jobs.push((handle, cube, priority.label(), route.label()));

        // Stage the attack once a batch of resilient work is in flight: kill
        // one member of replica group 0 while the service is busy.
        if i == JOBS / 4 && !attacked {
            attacked = service.inject_attack("rg0#0");
            println!("attack injected against rg0#0 (accepted: {attacked})");
        }
    }
    assert!(attacked, "the staged attack must have fired");
    println!(
        "{} jobs submitted (queue depth now {})",
        JOBS,
        service.queue_depth()
    );

    // Collect every outcome through its handle and verify it byte-for-byte
    // against the sequential reference — concurrency, sharding, routing,
    // replication and the attack must all be invisible in the results.
    let mut verified = 0;
    for (mut handle, cube, priority, route) in jobs {
        let id = handle.id();
        let outcome = handle.wait()?;
        let output = outcome.output().expect("job completes");
        let reference = SequentialPct::new(PctConfig::paper()).run(&cube)?;
        assert_eq!(
            output, &reference,
            "job {id} ({priority}/{route}) diverged from the sequential reference"
        );
        verified += 1;
    }
    println!("{verified}/{JOBS} outputs byte-identical to SequentialPct");

    let report = service.shutdown();
    assert_eq!(report.jobs_completed, JOBS);
    assert!(
        !report.members_attacked.is_empty(),
        "attack log must record the kill"
    );
    println!();
    print!("{}", report.render());
    Ok(())
}
