//! End-to-end streaming ingestion: cube *files* on disk → chunked in-place
//! decode → content-addressed store → `fusiond` jobs — plus a burst that
//! trips the shedding watermarks deterministically.
//!
//! The example proves the ingest subsystem's four claims with measured
//! numbers, not assertions in prose:
//!
//! 1. **Zero deep copies on the assembly path**: the pump's clone-ledger
//!    delta is 0 while the assembly ledger accounts every payload byte —
//!    BSQ/BIL/BIP chunks are scattered straight into the `Arc<HyperCube>`
//!    storage the jobs then share.
//! 2. **Store dedup**: the same scene written twice (in *different*
//!    interleaves) interns into one resident cube — `store_hits >= 1` and
//!    the two jobs fuse literally the same `Arc` storage.
//! 3. **Deterministic shedding**: a burst behind a big blocker overruns the
//!    in-flight-bytes watermark; exactly the configured tail of the burst
//!    is shed, never blocking the source.
//! 4. **Byte-identity**: every admitted cube's fused output equals
//!    `SequentialPct` on the same cube, bit for bit.
//!
//! Run with: `cargo run --release --example ingest_service`

use hsi::io::{write_cube_as, Interleave};
use hsi::{CubeDims, SceneConfig, SceneGenerator};
use ingest::{
    DirectorySource, IngestConfig, IngestPump, ShedReason, SheddingPolicy, SyntheticSource,
};
use pct::{PctConfig, SequentialPct};
use service::{BackendKind, FusionService, JobStatus, Route, ServiceConfig};
use std::sync::Arc;

fn scene(seed: u64, side: usize, bands: usize) -> SceneConfig {
    let mut config = SceneConfig::small(seed);
    config.dims = CubeDims::new(side, side, bands);
    config
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Phase 1: a folder of cube files, mixed interleaves, one duplicate.
    // ------------------------------------------------------------------
    let dir = std::env::temp_dir().join(format!("ingest_service_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let files = [
        ("00_alpha.hsif", scene(700, 20, 10), Interleave::Bsq),
        ("01_bravo.hsif", scene(701, 24, 12), Interleave::Bil),
        ("02_charlie.hsif", scene(702, 16, 8), Interleave::Bip),
        // The same scene as 00, exported in a different interleave: content
        // addressing must dedup it into an Arc bump.
        ("03_alpha_again.hsif", scene(700, 20, 10), Interleave::Bil),
    ];
    let mut written_bytes = 0usize;
    for (name, config, interleave) in &files {
        let cube = SceneGenerator::new(config.clone())?.generate();
        written_bytes += cube.byte_size();
        write_cube_as(&cube, *interleave, dir.join(name))?;
    }
    println!(
        "wrote {} cube files ({} payload bytes, bsq/bil/bip) to {}",
        files.len(),
        written_bytes,
        dir.display()
    );

    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(2)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(1)
            .build()?,
    )?;
    let pump = IngestPump::new(&service, IngestConfig::default());
    let run = pump.run(vec![Box::new(DirectorySource::with_chunk_bytes(
        &dir, 4096,
    ))])?;
    std::fs::remove_dir_all(&dir).ok();
    print!("{}", run.report.render());

    let totals = run.report.totals();
    assert_eq!(totals.cubes_seen, 4);
    assert_eq!(totals.cubes_admitted, 4);
    assert_eq!(run.report.jobs_completed, 4);

    // Claim 1: zero deep copies while every payload byte was assembled.
    assert_eq!(
        run.report.bytes_cloned, 0,
        "assembly or fusion deep-copied payload bytes"
    );
    assert_eq!(totals.bytes_assembled, written_bytes as u64);
    println!(
        "zero-copy assembly: {} bytes assembled in place, {} bytes cloned",
        totals.bytes_assembled, run.report.bytes_cloned
    );

    // Claim 2: the duplicate scene interned into shared storage.
    assert_eq!(totals.store_hits, 1, "duplicate scene was not deduplicated");
    assert_eq!(totals.store_misses, 3);
    assert_eq!(run.store.len(), 3);
    let alpha = run
        .jobs
        .iter()
        .find(|j| j.tag == "00_alpha.hsif")
        .expect("alpha ingested");
    let alpha_again = run
        .jobs
        .iter()
        .find(|j| j.tag == "03_alpha_again.hsif")
        .expect("alpha duplicate ingested");
    assert!(
        Arc::ptr_eq(&alpha.cube, &alpha_again.cube),
        "duplicate fused different storage"
    );
    println!(
        "store dedup: {} hits / {} misses; '00_alpha.hsif' and '03_alpha_again.hsif' share one Arc",
        totals.store_hits, totals.store_misses
    );

    // Claim 4 (steady half): byte-identity on every lane the router picked.
    for job in &run.jobs {
        let reference = SequentialPct::new(PctConfig::paper()).run(&job.cube)?;
        assert_eq!(
            job.outcome.output().expect("job completed"),
            &reference,
            "{} diverged from the sequential reference",
            job.tag
        );
    }
    println!("byte-identity: 4/4 fused outputs equal SequentialPct");
    service.shutdown();

    // ------------------------------------------------------------------
    // Phase 2: a burst overruns the in-flight-bytes watermark.
    // ------------------------------------------------------------------
    // One standard worker, one job in flight: the blocker occupies the only
    // slot while the (microseconds-long) burst is pumped, so the shedding
    // decisions below are deterministic.
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(1)
            .replica_groups(0)
            .shared_memory_executors(0)
            .queue_capacity(16)
            .max_in_flight(1)
            .build()?,
    )?;
    let blocker = scene(710, 64, 32);
    let small = scene(711, 12, 6);
    let blocker_bytes = blocker.dims.byte_size();
    let small_bytes = small.dims.byte_size();
    let mut arrivals = vec![("blocker".to_string(), blocker, Interleave::Bip)];
    for i in 0..6u64 {
        arrivals.push((format!("burst-{i}"), scene(720 + i, 12, 6), Interleave::Bsq));
    }
    let source = SyntheticSource::new("burst", arrivals, 16 * 1024);
    // Watermark: the blocker plus exactly two burst cubes may be in flight.
    let config = IngestConfig {
        shedding: SheddingPolicy::unbounded()
            .with_max_in_flight_bytes(blocker_bytes + 2 * small_bytes),
        route: Route::Pinned(BackendKind::Standard),
        shards: 2,
        ..IngestConfig::default()
    };
    let run = IngestPump::new(&service, config).run(vec![Box::new(source)])?;
    service.shutdown();
    print!("{}", run.report.render());

    // Claim 3: deterministic shedding — the tail of the burst, in order.
    let totals = run.report.totals();
    assert_eq!(totals.cubes_seen, 7);
    assert_eq!(totals.cubes_admitted, 3, "blocker + two burst cubes");
    assert_eq!(totals.shed_in_flight_bytes, 4);
    let shed_tags: Vec<&str> = run.shed.iter().map(|s| s.tag.as_str()).collect();
    assert_eq!(shed_tags, ["burst-2", "burst-3", "burst-4", "burst-5"]);
    assert!(run
        .shed
        .iter()
        .all(|s| s.reason == ShedReason::InFlightBytes));
    println!(
        "shedding: admitted [blocker, burst-0, burst-1], shed {shed_tags:?} at the {}-byte watermark",
        blocker_bytes + 2 * small_bytes
    );

    // Claim 4 (pressure half): everything admitted still fused exactly.
    for job in &run.jobs {
        assert_eq!(job.outcome.status(), JobStatus::Completed);
        let reference = SequentialPct::new(PctConfig::paper()).run(&job.cube)?;
        assert_eq!(
            job.outcome.output().expect("completed"),
            &reference,
            "{} diverged under pressure",
            job.tag
        );
    }
    println!(
        "byte-identity under pressure: {}/{} admitted outputs equal SequentialPct",
        run.jobs.len(),
        run.jobs.len()
    );
    Ok(())
}
