//! Quickstart: generate a small synthetic HYDICE-like scene, fuse it with the
//! sequential spectral-screening PCT, and print what happened.
//!
//! Run with: `cargo run --example quickstart --release`

use hsi::{SceneConfig, SceneGenerator};
use pct::{PctConfig, SequentialPct};

fn main() {
    // 1. Generate a small synthetic hyper-spectral scene (32x32, 16 bands)
    //    containing forest, fields and two vehicle targets.
    let generator = SceneGenerator::new(SceneConfig::small(42)).expect("valid scene config");
    let cube = generator.generate();
    println!(
        "generated a {}x{}x{} synthetic HYDICE-like cube",
        cube.width(),
        cube.height(),
        cube.bands()
    );

    // 2. Fuse it: spectral screening + PCT + human-centred colour mapping.
    let output = SequentialPct::new(PctConfig::paper())
        .run(&cube)
        .expect("fusion succeeds");

    // 3. Report the interesting numbers.
    println!(
        "spectral screening kept {} of {} pixels ({:.1}%)",
        output.unique_count,
        output.pixels,
        100.0 * output.unique_count as f64 / output.pixels as f64
    );
    println!(
        "the first three principal components carry {:.1}% of the variance",
        100.0 * output.variance_fraction(3)
    );
    println!(
        "fused image: {}x{}, RMS contrast {:.1}",
        output.image.width(),
        output.image.height(),
        output.image.rms_contrast()
    );

    // 4. Write the composite so it can be inspected.
    let path = std::env::temp_dir().join("quickstart_fused.ppm");
    hsi::io::write_ppm(&output.image, &path).expect("write PPM");
    println!("wrote {}", path.display());
}
