//! Observing `fusiond` without polling: subscribe to the [`ServiceEvent`]
//! stream while a chaos plan kills a replica-group member mid-job, and
//! narrate the kill → regeneration → completion sequence as it happens.
//!
//! Run with: `cargo run --release --example service_events`

use hsi::{CubeDims, SceneConfig, SceneGenerator};
use service::{
    BackendKind, ChaosPhase, ChaosPlan, CubeSource, FusionService, JobSpec, ServiceConfig,
    ServiceEvent,
};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic chaos plan: when the scheduler dispatches the first
    // screening task of job 1, member rg0#0 dies.
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(1)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(1)
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#0"))
            .build()?,
    )?;
    let events = service.subscribe();

    let mut config = SceneConfig::small(64);
    config.dims = CubeDims::new(24, 24, 12);
    let cube = Arc::new(SceneGenerator::new(config)?.generate());
    let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
        .pinned(BackendKind::Resilient)
        .shards(3)
        .build()?;
    let mut handle = service.submit(spec)?;

    // Narrate the whole run from the event stream — no status polling.
    let mut seen_kill = false;
    let mut seen_regen = false;
    while let Some(event) = events.next_timeout(Duration::from_secs(30)) {
        match &event {
            ServiceEvent::Admitted {
                job,
                tenant,
                route,
                auto,
            } => {
                println!(
                    "job {job} (tenant {tenant}) admitted onto the {} lane (auto: {auto})",
                    route.label()
                );
            }
            ServiceEvent::Rejected {
                job,
                tenant,
                reason,
                retry_after,
            } => {
                println!(
                    "job {job} (tenant {tenant}) refused: {} ({retry_after})",
                    reason.label()
                );
            }
            ServiceEvent::Dispatched {
                job, task, kind, ..
            } => {
                println!("job {job}: task {task} dispatched ({kind})");
            }
            ServiceEvent::Retransmitted { job, task, group } => {
                println!("job {job}: task {task} retransmitted to {group}");
            }
            ServiceEvent::MemberKilled { member } => {
                seen_kill = true;
                println!("CHAOS: {member} killed");
            }
            ServiceEvent::MemberRegenerated {
                failed,
                replacement,
            } => {
                seen_regen = true;
                println!("RECOVERY: {failed} regenerated as {replacement}");
            }
            ServiceEvent::WorkerLost { worker } => {
                println!("CHAOS: standard worker {worker} lost");
            }
            ServiceEvent::TaskReassigned {
                job,
                task,
                from,
                to,
            } => {
                println!("job {job}: task {task} reassigned {from} -> {to}");
            }
            ServiceEvent::LaneFailover { job, from, to } => {
                println!(
                    "job {job}: lane failover {} -> {}",
                    from.label(),
                    to.label()
                );
            }
            ServiceEvent::Terminal { job, status, .. } => {
                println!("job {job} terminal: {status:?}");
                break;
            }
        }
    }
    assert!(seen_kill, "the chaos kill must appear on the event stream");
    assert!(
        seen_regen,
        "the regeneration must appear on the event stream"
    );

    // The output survived the kill byte-for-byte.
    let outcome = handle.wait()?;
    let reference = pct::SequentialPct::new(pct::PctConfig::paper()).run(&cube)?;
    assert_eq!(outcome.output().expect("job completed"), &reference);
    println!("output byte-identical to SequentialPct despite the kill");

    let report = service.shutdown();
    assert!(report.regenerations >= 1);
    Ok(())
}
