//! Granularity sweep on the simulated cluster: the Figure 5 experiment as a
//! runnable example, printing the time matrix for different sub-cube counts.
//!
//! Run with: `cargo run --example granularity_sweep --release`

use pct::distributed_sim::{simulate_fusion, SimParams};

fn main() {
    println!("Simulated fusion time (seconds) on the 320x320x105 cube\n");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "procs", "x1", "x2", "x3", "x10"
    );
    for procs in [2usize, 4, 8, 16] {
        let mut row = format!("{procs:>8}");
        for mult in [1usize, 2, 3, 10] {
            let report =
                simulate_fusion(&SimParams::figure5(procs, mult)).expect("simulation runs");
            row.push_str(&format!(" {:>12.1}", report.elapsed_secs));
        }
        println!("{row}");
    }
    println!("\nOver-decomposition (x2, x3) overlaps communication with computation;");
    println!("very fine decomposition pays per-task overhead and tails off.");
}
