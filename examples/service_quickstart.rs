//! The smallest useful `fusiond` client: start the service with the default
//! builder, submit one job, wait on its handle, print the outcome.
//!
//! The `?` chains work because every error in the stack implements
//! `std::error::Error` and converts into `ServiceError` (or boxes).
//!
//! Run with: `cargo run --release --example service_quickstart`

use hsi::SceneConfig;
use service::{CubeSource, FusionService, JobSpec, ServiceConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A validated default configuration: 4 standard workers, 2 replica
    // groups at level 2, 2 shared-memory executors, size-threshold routing.
    let service = FusionService::start(ServiceConfig::builder().build()?)?;

    // One auto-routed job over a synthetic scene.  A small cube like this
    // resolves to the in-process shared-memory lane.
    let spec = JobSpec::builder(CubeSource::Synthetic(SceneConfig::small(42))).build()?;
    let mut handle = service.submit(spec)?;
    println!(
        "submitted job {} — status {:?}",
        handle.id(),
        handle.status()?
    );

    // The handle owns the job: wait() resolves to a typed terminal outcome.
    let outcome = handle.wait()?;
    let output = outcome.output().expect("job completed");
    println!(
        "fused {} pixels; screening kept {} ({:.1}%); 3 components carry {:.1}% of variance",
        output.pixels,
        output.unique_count,
        100.0 * output.unique_count as f64 / output.pixels as f64,
        100.0 * output.variance_fraction(3),
    );

    let report = service.shutdown();
    print!("{}", report.render());
    Ok(())
}
