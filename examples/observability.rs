//! The telemetry plane end to end: run a small mixed workload (including a
//! deterministic chaos kill) with spans, metrics and the flight recorder
//! all on, then print the Prometheus exposition snapshot, the span tree of
//! the attacked job, and dump the whole run as a Chrome `trace_event` JSON
//! file loadable in `chrome://tracing` or Perfetto.
//!
//! Run with: `cargo run --release --example observability`

use hsi::{CubeDims, SceneConfig, SceneGenerator};
use service::{
    BackendKind, ChaosPhase, ChaosPlan, CubeSource, FusionService, JobSpec, Route, ServiceConfig,
};
use std::sync::Arc;
use telemetry::Telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let telemetry = Telemetry::enabled();
    let service = FusionService::start(
        ServiceConfig::builder()
            .standard_workers(2)
            .replica_groups(1)
            .replication_level(2)
            .shared_memory_executors(1)
            // When the scheduler dispatches the first screening task of
            // job 1, member rg0#0 dies — and the trace shows the recovery.
            .chaos(ChaosPlan::kill_at(1, ChaosPhase::Screen, "rg0#0"))
            .telemetry(telemetry.clone())
            .build()?,
    )?;

    let mut config = SceneConfig::small(77);
    config.dims = CubeDims::new(24, 24, 12);
    let cube = Arc::new(SceneGenerator::new(config)?.generate());

    // Job 1 rides the resilient lane into the chaos kill; the others fan
    // out over the standard and shared-memory lanes.
    let mut handles = Vec::new();
    for route in [
        Route::Pinned(BackendKind::Resilient),
        Route::Pinned(BackendKind::Standard),
        Route::Auto,
    ] {
        let spec = JobSpec::builder(CubeSource::InMemory(Arc::clone(&cube)))
            .route(route)
            .shards(3)
            .build()?;
        handles.push(service.submit(spec)?);
    }
    for handle in &mut handles {
        handle.wait()?;
    }
    let report = service.shutdown();
    print!("{}", report.render());

    // The metrics registry, in Prometheus exposition format.
    println!("\n--- prometheus snapshot ---");
    print!("{}", telemetry.snapshot_prometheus().expect("enabled"));

    // The attacked job's span tree, reconstructed from the flight recorder.
    println!("--- span tree (job 1) ---");
    let spans = telemetry.spans();
    fn print_tree(spans: &[telemetry::Span], parent: Option<telemetry::SpanId>, depth: usize) {
        for span in spans.iter().filter(|s| s.parent == parent) {
            println!(
                "{:indent$}{} [{:.3} ms]{}{}",
                "",
                span.name,
                span.duration_nanos() as f64 / 1e6,
                if span.detail.is_empty() { "" } else { " — " },
                span.detail,
                indent = depth * 2
            );
            print_tree(spans, Some(span.id), depth + 1);
        }
    }
    let roots: Vec<_> = spans
        .iter()
        .filter(|s| s.parent.is_none() && s.job == Some(1))
        .collect();
    for root in roots {
        print_tree(&spans, Some(root.id), 1);
        println!("(root: {} — {})", root.name, root.detail);
    }

    // The whole run as a Chrome trace, for chrome://tracing or Perfetto.
    let path = std::env::temp_dir().join("fusiond_observability_trace.json");
    std::fs::write(&path, telemetry.chrome_trace().expect("enabled"))?;
    println!("\nwrote Chrome trace to {}", path.display());
    Ok(())
}
