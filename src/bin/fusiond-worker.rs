//! `fusiond-worker` — a fusion worker as a separate OS process.
//!
//! Two modes:
//!
//! * `fusiond-worker <addr>` — dial into a service listening at `addr`
//!   (the mode `RemoteWorkerSpec::Spawn` uses: the service appends its
//!   listener address as the final argument);
//! * `fusiond-worker --listen <addr>` — listen at `addr` and serve the
//!   first connection (the mode `RemoteWorkerSpec::Connect` pairs with).
//!
//! Either way the process runs `wire::worker::run_worker`: protocol-version
//! handshake first, then the task/heartbeat loop until the service sends
//! `Shutdown` (exit 0) or the connection fails (exit 1).

use std::net::TcpListener;
use std::process::ExitCode;
use wire::worker::run_worker;
use wire::TcpTransport;

fn usage() -> ExitCode {
    eprintln!("usage: fusiond-worker <addr> | fusiond-worker --listen <addr>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [addr] => TcpTransport::connect(addr).and_then(|mut transport| run_worker(&mut transport)),
        [flag, addr] if flag == "--listen" => {
            match TcpListener::bind(addr).and_then(|l| l.accept()) {
                Ok((stream, _)) => {
                    TcpTransport::new(stream).and_then(|mut transport| run_worker(&mut transport))
                }
                Err(e) => {
                    eprintln!("fusiond-worker: listening at {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fusiond-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
