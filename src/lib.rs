//! Façade crate for the Resilient Image Fusion reproduction.
//!
//! The real functionality lives in the workspace crates; this crate
//! re-exports them so downstream users (and the cross-crate integration
//! tests in `tests/end_to_end.rs`) can depend on a single package.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hsi;
pub use ingest;
pub use linalg;
pub use netsim;
pub use pct;
pub use resilience;
pub use scp;
pub use service;
pub use sim;
pub use telemetry;
